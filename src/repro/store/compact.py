"""Segment compaction: merge many small committed segments into few.

Streaming ingestion (sweeps, fleet simulations) seals a segment every
``rows_per_segment`` rows, so a long campaign accumulates many small
segments — each one a file pair to open, a manifest entry to check and a
column cache to load.  Compaction rewrites a kind's committed rows, **in
exactly their current order**, into the minimal number of fresh segments and
atomically swaps the manifest over to them:

* query results are **bit-for-bit identical** before and after — rows,
  order, checksummed content and column dtypes all round-trip through the
  same segment writers that sealed them originally;
* the swap is one atomic manifest rewrite, so readers see either the old
  layout or the new one, never a mixture; a crash mid-compaction leaves the
  old manifest in force (fresh segment files without a manifest entry are
  invisible and get cleaned up by the next successful compaction);
* old segment files are deleted only after the new manifest is durable.

Compaction is also the **row -> columnar converter**: with
``output_format`` the rewritten segments seal in the requested format
(``"columnar"`` packs the concatenated column arrays directly — no pivot
through row dicts).  By default each kind converges to columnar as soon as
any of its segments already is (mixed kinds end up uniform), while
pure-JSONL kinds stay JSONL — compacting a pre-v3 store never silently
changes its format.  The opposite direction (columnar -> JSONL) is
:func:`~repro.store.export.export_store`'s job.

Compaction takes the single-writer seat while it runs — like
:class:`~repro.store.writer.StoreWriter`, it must not race another writer on
the sequence counter.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.store.schema import kind_for
from repro.store.segment import (FORMAT_COLUMNAR, FORMAT_JSONL,
                                 MMAP_DIR_SUFFIX, SegmentMeta,
                                 write_columnar_segment, write_segment)
from repro.store.store import ResultStore

__all__ = ["CompactionStats", "compact_store", "reseal_kind"]

#: Accepted ``output_format`` values (``None`` = per-kind convergence).
_OUTPUT_FORMATS = (FORMAT_JSONL, FORMAT_COLUMNAR)


@dataclass(frozen=True)
class CompactionStats:
    """What one compaction pass did."""

    segments_before: int
    segments_after: int
    rows_rewritten: int
    kinds_compacted: tuple[str, ...]
    files_removed: int
    #: Old segment bytes removed (files + mmap sidecars) minus new segment
    #: bytes written.  Negative when compaction grew the store (e.g. a
    #: JSONL -> columnar conversion of incompressible data).
    bytes_reclaimed: int = 0


def _plan_chunks(total_rows: int, rows_per_segment: Optional[int]) -> int:
    """How many segments a kind's rows compact into."""
    if rows_per_segment is None:
        return 1 if total_rows else 0
    return (total_rows + rows_per_segment - 1) // rows_per_segment


def reseal_kind(store: ResultStore, name: str, *, sequence: int,
                rows_per_segment: Optional[int], output_format: str,
                directory: Optional[Path] = None,
                compress: bool = False
                ) -> tuple[list[SegmentMeta], int, int]:
    """Rewrite one kind's committed rows, in order, into fresh segments.

    The shared rewrite core of :func:`compact_store` (which seals into the
    store's own segments directory) and
    :func:`~repro.store.export.export_store` (which seals into a fresh
    store's).  Columnar output concatenates the column arrays across the
    source segments — no pivot through per-row dicts; JSONL output gathers
    the rows.  Returns ``(sealed metas, next sequence, rows rewritten)``.
    """
    if output_format not in _OUTPUT_FORMATS:
        raise ValueError(
            f"unknown output format {output_format!r} (have {_OUTPUT_FORMATS})")
    if directory is None:
        directory = store.segments_dir
    kind = kind_for(name)
    sealed: list[SegmentMeta] = []
    if output_format == FORMAT_COLUMNAR:
        parts = [store.columns_for(meta) for meta in store.segments_for(name)]
        columns = {
            column.name: np.concatenate(
                [part[column.name] for part in parts]) if parts
            else np.empty(0, dtype=column.numpy_dtype)
            for column in kind.columns
        }
        total = store.num_rows(name)
        chunk = rows_per_segment if rows_per_segment is not None \
            else max(1, total)
        for start in range(0, total, chunk):
            sequence += 1
            sealed.append(write_columnar_segment(
                directory, f"{name}-{sequence:06d}", kind,
                {col: array[start:start + chunk]
                 for col, array in columns.items()}, compress=compress))
        return sealed, sequence, total
    rows: list[dict] = []
    for meta in store.segments_for(name):
        rows.extend(store.rows_for(meta))
    chunk = rows_per_segment if rows_per_segment is not None \
        else max(1, len(rows))
    for start in range(0, len(rows), chunk):
        sequence += 1
        sealed.append(write_segment(
            directory, f"{name}-{sequence:06d}", kind,
            rows[start:start + chunk]))
    return sealed, sequence, len(rows)


def compact_store(store: Union[ResultStore, str, Path], *,
                  rows_per_segment: Optional[int] = None,
                  kinds: Optional[Sequence[str]] = None,
                  output_format: Optional[str] = None,
                  compress: bool = False) -> CompactionStats:
    """Merge a store's small segments; returns what changed.

    ``rows_per_segment`` of ``None`` merges each kind into a single segment;
    otherwise rows re-chunk at that size.  ``kinds`` restricts the pass to
    the named row kinds (default: every kind in the store).
    ``output_format`` forces the rewritten segments' format (``"jsonl"`` or
    ``"columnar"``); ``None`` converges each kind to columnar if any of its
    segments already is, and keeps pure-JSONL kinds JSONL.  ``compress``
    zlib-deflates the rewritten columnar segments' column sections.  Kinds
    already at (or below) the target segment count *and* uniformly in the
    target format are left untouched — their existing files and checksums
    stay exactly as committed.
    """
    if rows_per_segment is not None and rows_per_segment <= 0:
        raise ValueError("rows_per_segment must be positive when given")
    if output_format is not None and output_format not in _OUTPUT_FORMATS:
        raise ValueError(
            f"unknown output format {output_format!r} (have {_OUTPUT_FORMATS})")
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    wanted = set(kinds) if kinds is not None else None
    if wanted is not None:
        for name in wanted:
            kind_for(name)  # unknown kinds fail fast

    segments_before = len(store.segments)
    to_compact: dict[str, str] = {}  # kind -> target format
    for name in store.kinds():
        if wanted is not None and name not in wanted:
            continue
        metas = store.segments_for(name)
        target = output_format
        if target is None:
            target = FORMAT_COLUMNAR if any(m.is_columnar for m in metas) \
                else FORMAT_JSONL
        oversharded = len(metas) > _plan_chunks(store.num_rows(name),
                                                rows_per_segment)
        mixed = any(meta.format != target for meta in metas)
        if oversharded or mixed:
            to_compact[name] = target
    if not to_compact:
        return CompactionStats(segments_before, segments_before, 0, (), 0)

    # Seal the replacement segments first; they stay invisible until the
    # manifest swap below.
    sequence = store.sequence
    replacements: dict[str, list[SegmentMeta]] = {}
    rows_rewritten = 0
    new_bytes = 0
    for name, target in to_compact.items():
        sealed, sequence, rows = reseal_kind(
            store, name, sequence=sequence,
            rows_per_segment=rows_per_segment, output_format=target,
            compress=compress)
        rows_rewritten += rows
        replacements[name] = sealed
        for meta in sealed:
            for filename in meta.filenames:
                try:
                    new_bytes += (store.segments_dir / filename
                                  ).stat().st_size
                except FileNotFoundError:  # pragma: no cover - defensive
                    pass

    # Swap: keep untouched segments in manifest order, splice each compacted
    # kind's new segments where its first old segment sat (preserving the
    # per-kind scan order queries rely on).
    old_files: list[str] = []
    old_mmap_dirs: list[str] = []
    new_manifest: list[SegmentMeta] = []
    spliced: set[str] = set()
    for meta in store.segments:
        if meta.kind not in replacements:
            new_manifest.append(meta)
            continue
        old_files.extend(meta.filenames)
        old_mmap_dirs.append(f"{meta.name}{MMAP_DIR_SUFFIX}")
        if meta.kind not in spliced:
            spliced.add(meta.kind)
            new_manifest.extend(replacements[meta.kind])
    store._commit_replacement(new_manifest, sequence)

    files_removed = 0
    old_bytes = 0
    for filename in old_files:
        path = store.segments_dir / filename
        try:
            old_bytes += path.stat().st_size
            path.unlink()
            files_removed += 1
        except FileNotFoundError:  # pragma: no cover - cache never written
            pass
    # Memory-map sidecar directories of dropped segments are derived state;
    # sweep them so a compacted store leaves no orphaned files behind.
    for dirname in old_mmap_dirs:
        sidecar = store.segments_dir / dirname
        if sidecar.is_dir():
            for path in sidecar.iterdir():
                try:
                    old_bytes += path.stat().st_size
                except FileNotFoundError:  # pragma: no cover - race
                    pass
            shutil.rmtree(sidecar, ignore_errors=True)

    return CompactionStats(
        segments_before=segments_before,
        segments_after=len(new_manifest),
        rows_rewritten=rows_rewritten,
        kinds_compacted=tuple(to_compact),
        files_removed=files_removed,
        bytes_reclaimed=old_bytes - new_bytes,
    )
