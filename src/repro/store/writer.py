"""Streaming ingestion into a :class:`~repro.store.store.ResultStore`.

The writer accepts pipeline objects (:class:`ExecutionResult`,
:class:`ModelRecord`, :class:`AppRecord`, :class:`ScenarioResult`), raw
rows, or — the fleet-scale fast path — whole **column batches**
(:meth:`StoreWriter.append_batch`), buffers them per row kind, and seals a
segment whenever a buffer reaches ``rows_per_segment`` (and at
:meth:`flush`/:meth:`close`).  Sealing follows the commit protocol of
:mod:`repro.store.segment`:

1. write the segment's durable artifact atomically and checksum it — the
   JSONL row log for row-buffered kinds, the packed columnar payload for
   batch-buffered ones;
2. for JSONL segments, write the derived npz column cache (recoverable if
   this is lost; columnar segments have no derived state);
3. atomically rewrite ``MANIFEST.json`` to reference the new segment.

Only step 3 makes rows visible, so a crash at any point loses at most the
rows buffered since the last seal — never previously committed data, and
never a torn segment.  Row and batch appends may be mixed freely, even for
the same kind: switching mode seals whatever the other mode had buffered
first, so ingestion order is preserved exactly.

The row path validates each row against a precomputed frozen column-name
set (one subset test per row); the batch path validates once per batch,
vectorised over the arrays — no per-row dicts, no per-row ``json.dumps``,
stats straight off the column arrays.  That difference is the
``benchmarks/test_bench_ingest.py`` gate: batch ingestion is required to
beat row ingestion by >= 10x.

The writer is the sweep's ``on_result`` sink: pass ``writer.append``
directly as the callback, or use
:meth:`~repro.runtime.sweep.SweepRunner.run_to_store`.

One writer per store at a time; concurrent writers would race on the
sequence counter (single-writer, many-reader is the supported regime).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Union

import numpy as np

from repro import obs
from repro.store.columnar import coerce_batch
from repro.store.schema import RowKind, kind_for, kind_of_object
from repro.store.segment import (SegmentMeta, write_columnar_segment,
                                 write_segment)
from repro.store.store import ResultStore

__all__ = ["StoreWriter", "ingest_snapshot"]


class StoreWriter:
    """Append-only, batching writer over one open store."""

    def __init__(self, store: ResultStore, *, rows_per_segment: int = 4096,
                 compress: bool = False) -> None:
        if rows_per_segment <= 0:
            raise ValueError("rows_per_segment must be positive")
        self.store = store
        self.rows_per_segment = rows_per_segment
        #: zlib-compress columnar segment sections when that wins.
        self.compress = compress
        self._pending: dict[str, list[dict]] = {}
        #: kind -> buffered column chunks (each a schema-coerced batch).
        self._pending_batches: dict[str, list[dict[str, np.ndarray]]] = {}
        self._sequence = store.sequence
        self._closed = False
        #: Rows committed (sealed + manifest-visible) by this writer.
        self.rows_committed = 0
        #: Segments sealed by this writer.
        self.segments_sealed = 0

    # ------------------------------------------------------------------ #
    # Appends
    # ------------------------------------------------------------------ #
    def append(self, obj: Any) -> None:
        """Append one pipeline object, dispatching on its type."""
        kind = kind_of_object(obj)
        self.append_row(kind, kind.to_row(obj))

    def append_row(self, kind: Union[str, RowKind], row: Mapping) -> None:
        """Append one already-flattened row of an explicit kind."""
        if self._closed:
            raise RuntimeError("writer is closed")
        if isinstance(kind, str):
            kind = kind_for(kind)
        if not kind.column_name_set <= row.keys():
            missing = [c.name for c in kind.columns if c.name not in row]
            raise ValueError(
                f"row for kind {kind.name!r} is missing columns {missing}")
        if self._pending_batches.get(kind.name):
            # Mode switch: seal the buffered column chunks first so the
            # committed row order matches the append order exactly.
            self.flush(kind.name)
        pending = self._pending.setdefault(kind.name, [])
        pending.append(dict(row))
        if len(pending) >= self.rows_per_segment:
            self.flush(kind.name)

    def append_batch(self, kind: Union[str, RowKind],
                     columns: Mapping[str, Any]) -> int:
        """Append one column batch (``{column: array-like}``); returns its rows.

        The batch-native ingestion path: every schema column maps to a 1-D
        array of equal length, validated and dtype-coerced **once per
        batch** (:func:`~repro.store.columnar.coerce_batch`) instead of once
        per row.  Buffered chunks seal by concatenation into a packed
        columnar segment — no per-row dicts, no per-row JSON — once
        ``rows_per_segment`` rows have accumulated (and at
        :meth:`flush`/:meth:`close`).
        """
        if self._closed:
            raise RuntimeError("writer is closed")
        if isinstance(kind, str):
            kind = kind_for(kind)
        batch = coerce_batch(kind, columns)
        rows = next(iter(batch.values())).size if batch else 0
        if not rows:
            return 0
        if self._pending.get(kind.name):
            self.flush(kind.name)  # mode switch: seal buffered rows first
        chunks = self._pending_batches.setdefault(kind.name, [])
        chunks.append(batch)
        if sum(c[kind.columns[0].name].size for c in chunks) \
                >= self.rows_per_segment:
            # Seal only full rows_per_segment slices; the remainder stays
            # buffered so mid-stream segments never under- (or over-) shoot
            # the configured size.
            self._flush(kind.name, seal_partial_batches=False)
        return rows

    def append_many(self, objects: Iterable[Any]) -> int:
        """Append a stream of pipeline objects; returns how many."""
        count = 0
        for obj in objects:
            self.append(obj)
            count += 1
        return count

    @property
    def rows_pending(self) -> int:
        """Rows buffered but not yet committed (row and batch buffers)."""
        rows = sum(len(rows) for rows in self._pending.values())
        for name, chunks in self._pending_batches.items():
            first = kind_for(name).columns[0].name
            rows += sum(chunk[first].size for chunk in chunks)
        return rows

    # ------------------------------------------------------------------ #
    # Sealing
    # ------------------------------------------------------------------ #
    def _concatenated(self, kind: RowKind,
                      chunks: list[dict[str, np.ndarray]]
                      ) -> dict[str, np.ndarray]:
        """One array per column over all buffered chunks of a kind."""
        if len(chunks) == 1:
            return chunks[0]
        return {
            column.name: np.concatenate(
                [chunk[column.name] for chunk in chunks])
            for column in kind.columns
        }

    def _seal_batches(self, kind: RowKind, *,
                      seal_partial: bool) -> list[SegmentMeta]:
        """Seal a kind's buffered column chunks in rows_per_segment slices.

        Segment sizing matches the row path: every mid-stream segment holds
        exactly ``rows_per_segment`` rows (so per-segment pruning stats stay
        sharp and crash-loss granularity honours the knob); only a final
        seal (``seal_partial``) writes the sub-size tail, and a remainder
        left behind stays buffered as one pre-concatenated chunk.
        """
        chunks = self._pending_batches.get(kind.name)
        if not chunks:
            return []
        columns = self._concatenated(kind, chunks)
        total = columns[kind.columns[0].name].size
        sealed: list[SegmentMeta] = []
        start = 0
        while total - start >= self.rows_per_segment or \
                (seal_partial and start < total):
            stop = min(start + self.rows_per_segment, total)
            self._sequence += 1
            sealed.append(write_columnar_segment(
                self.store.segments_dir, f"{kind.name}-{self._sequence:06d}",
                kind, {name: array[start:stop]
                       for name, array in columns.items()},
                compress=self.compress))
            start = stop
        self._pending_batches[kind.name] = [] if start >= total else \
            [{name: array[start:] for name, array in columns.items()}]
        return sealed

    def flush(self, kind: Optional[str] = None) -> None:
        """Seal everything pending (of one kind, or all) and commit."""
        self._flush(kind, seal_partial_batches=True)

    def _flush(self, kind: Optional[str], *,
               seal_partial_batches: bool) -> None:
        collector = obs.get_collector()
        span = (collector.span("store.flush", detail=kind or "")
                if collector is not None and self.rows_pending else obs.NO_SPAN)
        with span:
            kinds = [kind] if kind is not None else \
                list({**self._pending, **self._pending_batches})
            sealed: list[SegmentMeta] = []
            for name in kinds:
                rows = self._pending.get(name)
                if rows:
                    self._sequence += 1
                    sealed.append(write_segment(
                        self.store.segments_dir,
                        f"{name}-{self._sequence:06d}",
                        kind_for(name), rows))
                    self._pending[name] = []
                sealed.extend(self._seal_batches(
                    kind_for(name), seal_partial=seal_partial_batches))
            if sealed:
                self.store._commit(sealed, self._sequence)
                rows_sealed = sum(meta.rows for meta in sealed)
                self.segments_sealed += len(sealed)
                self.rows_committed += rows_sealed
                if collector is not None:
                    # Segment payloads are a pure function of the row
                    # stream and writer config, so all three totals are
                    # deterministic-class despite being I/O-shaped.
                    collector.count("store.segments_sealed", len(sealed))
                    collector.count("store.rows_committed", rows_sealed)
                    collector.count("store.bytes_written", sum(
                        (self.store.segments_dir /
                         meta.data_filename).stat().st_size
                        for meta in sealed))

    def close(self) -> None:
        """Flush everything pending and refuse further appends."""
        if not self._closed:
            self.flush()
            self._closed = True

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Commit what was ingested even when the producing loop failed —
        # partial campaigns are queryable and resumable by design.
        self.close()


def ingest_snapshot(sink: Union[ResultStore, StoreWriter], analysis) -> int:
    """Persist a snapshot analysis (app + model rows) into a store.

    ``analysis`` is a :class:`~repro.core.records.SnapshotAnalysis`; its app
    and model records become ``apps`` / ``models`` rows, giving store-backed
    reports (e.g. the Fig. 15 cloud-API table) the same population the
    in-memory path sees.  Returns the number of rows written.
    """
    if isinstance(sink, StoreWriter):
        count = sink.append_many(analysis.apps)
        count += sink.append_many(analysis.models)
        return count
    with sink.writer() as writer:
        return ingest_snapshot(writer, analysis)
