"""Streaming ingestion into a :class:`~repro.store.store.ResultStore`.

The writer accepts pipeline objects (:class:`ExecutionResult`,
:class:`ModelRecord`, :class:`AppRecord`, :class:`ScenarioResult`) or raw
rows, buffers them per row kind, and seals a segment whenever a buffer
reaches ``rows_per_segment`` (and at :meth:`flush`/:meth:`close`).  Sealing
follows the commit protocol of :mod:`repro.store.segment`:

1. write the JSONL row log atomically and checksum it;
2. write the derived npz column cache (recoverable if this is lost);
3. atomically rewrite ``MANIFEST.json`` to reference the new segment.

Only step 3 makes rows visible, so a crash at any point loses at most the
rows buffered since the last seal — never previously committed data, and
never a torn segment.  The writer is the sweep's ``on_result`` sink: pass
``writer.append`` directly as the callback, or use
:meth:`~repro.runtime.sweep.SweepRunner.run_to_store`.

One writer per store at a time; concurrent writers would race on the
sequence counter (single-writer, many-reader is the supported regime).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Union

from repro.store.schema import RowKind, kind_for, kind_of_object
from repro.store.segment import SegmentMeta, write_segment
from repro.store.store import ResultStore

__all__ = ["StoreWriter", "ingest_snapshot"]


class StoreWriter:
    """Append-only, batching writer over one open store."""

    def __init__(self, store: ResultStore, *, rows_per_segment: int = 4096) -> None:
        if rows_per_segment <= 0:
            raise ValueError("rows_per_segment must be positive")
        self.store = store
        self.rows_per_segment = rows_per_segment
        self._pending: dict[str, list[dict]] = {}
        self._sequence = store.sequence
        self._closed = False
        #: Rows committed (sealed + manifest-visible) by this writer.
        self.rows_committed = 0
        #: Segments sealed by this writer.
        self.segments_sealed = 0

    # ------------------------------------------------------------------ #
    # Appends
    # ------------------------------------------------------------------ #
    def append(self, obj: Any) -> None:
        """Append one pipeline object, dispatching on its type."""
        kind = kind_of_object(obj)
        self.append_row(kind, kind.to_row(obj))

    def append_row(self, kind: Union[str, RowKind], row: Mapping) -> None:
        """Append one already-flattened row of an explicit kind."""
        if self._closed:
            raise RuntimeError("writer is closed")
        if isinstance(kind, str):
            kind = kind_for(kind)
        missing = [c.name for c in kind.columns if c.name not in row]
        if missing:
            raise ValueError(
                f"row for kind {kind.name!r} is missing columns {missing}")
        pending = self._pending.setdefault(kind.name, [])
        pending.append(dict(row))
        if len(pending) >= self.rows_per_segment:
            self.flush(kind.name)

    def append_many(self, objects: Iterable[Any]) -> int:
        """Append a stream of pipeline objects; returns how many."""
        count = 0
        for obj in objects:
            self.append(obj)
            count += 1
        return count

    @property
    def rows_pending(self) -> int:
        """Rows buffered but not yet committed."""
        return sum(len(rows) for rows in self._pending.values())

    # ------------------------------------------------------------------ #
    # Sealing
    # ------------------------------------------------------------------ #
    def flush(self, kind: Optional[str] = None) -> None:
        """Seal pending rows (of one kind, or all) and commit the manifest."""
        kinds = [kind] if kind is not None else list(self._pending)
        sealed: list[SegmentMeta] = []
        for name in kinds:
            rows = self._pending.get(name)
            if not rows:
                continue
            self._sequence += 1
            segment_name = f"{name}-{self._sequence:06d}"
            sealed.append(write_segment(
                self.store.segments_dir, segment_name, kind_for(name), rows))
            self._pending[name] = []
        if sealed:
            self.store._commit(sealed, self._sequence)
            self.segments_sealed += len(sealed)
            self.rows_committed += sum(meta.rows for meta in sealed)

    def close(self) -> None:
        """Flush everything pending and refuse further appends."""
        if not self._closed:
            self.flush()
            self._closed = True

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Commit what was ingested even when the producing loop failed —
        # partial campaigns are queryable and resumable by design.
        self.close()


def ingest_snapshot(sink: Union[ResultStore, StoreWriter], analysis) -> int:
    """Persist a snapshot analysis (app + model rows) into a store.

    ``analysis`` is a :class:`~repro.core.records.SnapshotAnalysis`; its app
    and model records become ``apps`` / ``models`` rows, giving store-backed
    reports (e.g. the Fig. 15 cloud-API table) the same population the
    in-memory path sees.  Returns the number of rows written.
    """
    if isinstance(sink, StoreWriter):
        count = sink.append_many(analysis.apps)
        count += sink.append_many(analysis.models)
        return count
    with sink.writer() as writer:
        return ingest_snapshot(writer, analysis)
