"""Vectorised store-level diff: align two stores on group keys, per kind.

The cross-run half of the observability story: two campaign stores (or one
store and a committed baseline snapshot of it) are compared by aligning
their rows on a per-kind set of **group-by key columns** and reducing a
per-kind set of **metric columns** over each group.  Everything evaluates
over the NumPy column caches through the same
:class:`~repro.store.query.Query` gather path (predicate pushdown, column
pruning) that serves reports — never row by row:

1. each side's key + metric columns are gathered via ``Query.arrays``;
2. group keys are radix-encoded into one ``int64`` code per row **with a
   vocabulary shared across both sides**, so a code compares equal iff
   every key column compares equal;
3. metrics reduce per group (integer sums via ``np.add.reduceat`` in
   int64 — exact — float sums via ``np.bincount`` weights — sequential
   in row order — min/max via ``reduceat`` over a stable group sort), so
   every reduction is a pure function of the group's rows and a store
   diffed against itself is zero-delta *bit-exactly*;
4. the two sides align with one ``np.intersect1d`` over the group codes:
   matched groups yield per-metric delta arrays, unmatched ones become
   the ``added`` / ``removed`` entity sets.

What counts as a key and a metric per row kind lives in
:data:`DIFF_SPECS`; callers may substitute their own
:class:`DiffSpec`.  :func:`diff_kind_reference` is the deliberately
per-row Python implementation the benchmark gate
(``benchmarks/test_bench_drift.py``) holds the vectorised engine
equivalent to — and >= 5x faster than.

Severity / tolerance policy does **not** live here: this module reports
exact deltas; :mod:`repro.obs.drift` decides which of them matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.store.schema import kind_for

__all__ = ["DiffSpec", "MetricSpec", "KindDiff", "StoreDiff", "DIFF_SPECS",
           "diff_stores", "diff_kind", "diff_kind_reference", "spec_for"]

#: Aggregations the group reducer implements (a subset of the query
#: engine's, restricted to ones with an exact reduceat/bincount form).
_AGGS = ("count", "sum", "mean", "min", "max")

#: Radix-encoded group codes must stay inside int64; beyond this many
#: distinct composite keys the encoding could overflow.
_MAX_KEY_SPACE = 2 ** 62


@dataclass(frozen=True)
class MetricSpec:
    """One reduced metric of a diff: ``column`` aggregated by ``agg``.

    ``column`` is ``None`` for the ``count`` aggregation (group size needs
    no column).  ``name`` defaults to ``<column>_<agg>`` (or ``rows`` for
    the count).
    """

    column: Optional[str]
    agg: str = "sum"
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.agg not in _AGGS:
            raise ValueError(f"unknown diff aggregation {self.agg!r} "
                             f"(have {_AGGS})")
        if self.column is None and self.agg != "count":
            raise ValueError(f"aggregation {self.agg!r} needs a column")

    @property
    def out_name(self) -> str:
        """Output metric name."""
        if self.name is not None:
            return self.name
        return "rows" if self.agg == "count" else f"{self.column}_{self.agg}"


@dataclass(frozen=True)
class DiffSpec:
    """How one row kind aligns and reduces: key columns + metrics."""

    kind: str
    keys: tuple[str, ...]
    metrics: tuple[MetricSpec, ...]

    def __post_init__(self) -> None:
        if not self.keys:
            raise ValueError(f"diff spec for {self.kind!r} needs at least "
                             f"one key column")
        names = [m.out_name for m in self.metrics]
        if len(set(names)) != len(names):
            raise ValueError(f"diff spec for {self.kind!r} has duplicate "
                             f"metric names {names}")

    @property
    def metric_names(self) -> tuple[str, ...]:
        """Ordered output metric names."""
        return tuple(m.out_name for m in self.metrics)


#: Default alignment/reduction per row kind.  Every metric of a result
#: kind is deterministic-class (bit-identity is the product), so the
#: drift policy compares them exact; telemetry/bench kinds carry mixed
#: classes the policy resolves per group (see repro.obs.drift).
DIFF_SPECS: dict[str, DiffSpec] = {
    spec.kind: spec for spec in (
        DiffSpec(
            kind="executions",
            keys=("model_name", "device_name", "backend", "batch_size",
                  "thread_label"),
            metrics=(MetricSpec(None, "count"),
                     MetricSpec("latency_ms", "sum"),
                     MetricSpec("energy_mj", "sum"),
                     MetricSpec("power_watts", "sum"),
                     MetricSpec("flops", "sum"),
                     MetricSpec("peak_memory_bytes", "sum")),
        ),
        DiffSpec(
            kind="models",
            keys=("checksum", "name"),
            metrics=(MetricSpec(None, "count"),
                     MetricSpec("size_bytes", "sum"),
                     MetricSpec("flops", "sum"),
                     MetricSpec("parameters", "sum")),
        ),
        DiffSpec(
            kind="apps",
            keys=("package",),
            metrics=(MetricSpec(None, "count"),
                     MetricSpec("model_count", "sum"),
                     MetricSpec("downloads", "sum"),
                     MetricSpec("apk_size_bytes", "sum")),
        ),
        DiffSpec(
            kind="scenarios",
            keys=("scenario", "device", "model_name"),
            metrics=(MetricSpec(None, "count"),
                     MetricSpec("inference_count", "sum"),
                     MetricSpec("energy_joules", "sum"),
                     MetricSpec("battery_discharge_mah", "sum")),
        ),
        DiffSpec(
            kind="fleet_events",
            keys=("device_name", "scenario", "target", "region", "cloud_api"),
            metrics=(MetricSpec(None, "count"),
                     MetricSpec("latency_ms", "sum"),
                     MetricSpec("wait_ms", "sum"),
                     MetricSpec("energy_mj", "sum"),
                     MetricSpec("discharge_mah", "sum"),
                     MetricSpec("cloud_bytes", "sum")),
        ),
        DiffSpec(
            kind="fleet_load",
            keys=("region", "cloud_api", "bin_index"),
            metrics=(MetricSpec(None, "count"),
                     MetricSpec("requests", "sum"),
                     MetricSpec("payload_bytes", "sum")),
        ),
        DiffSpec(
            kind="telemetry_metrics",
            keys=("run_id", "metric", "metric_class"),
            metrics=(MetricSpec("value_i", "sum"),
                     MetricSpec("total", "sum")),
        ),
        DiffSpec(
            kind="telemetry_spans",
            keys=("run_id", "name"),
            metrics=(MetricSpec(None, "count"),
                     MetricSpec("duration_s", "sum"),
                     MetricSpec("items", "sum")),
        ),
        DiffSpec(
            kind="bench_runs",
            keys=("benchmark", "run_id", "metric"),
            metrics=(MetricSpec("value", "sum"),),
        ),
    )
}


def spec_for(kind: str) -> DiffSpec:
    """The default :class:`DiffSpec` of a row kind."""
    try:
        return DIFF_SPECS[kind]
    except KeyError:
        raise KeyError(f"no diff spec registered for row kind {kind!r} "
                       f"(have {sorted(DIFF_SPECS)})") from None


@dataclass
class KindDiff:
    """The aligned diff of one row kind between two stores.

    Matched groups are ordered by their key columns (lexicographically,
    in spec key order); ``a``/``b``/``delta`` hold one array per metric
    over that order, and ``changed`` marks groups where any metric's
    values differ *exactly* (bitwise ``!=`` — no tolerance here).
    """

    kind: str
    keys: tuple[str, ...]
    metrics: tuple[str, ...]
    rows_a: int
    rows_b: int
    #: Matched groups: key column -> decoded values.
    key_arrays: dict[str, np.ndarray] = field(default_factory=dict)
    a: dict[str, np.ndarray] = field(default_factory=dict)
    b: dict[str, np.ndarray] = field(default_factory=dict)
    delta: dict[str, np.ndarray] = field(default_factory=dict)
    changed: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=bool))
    #: Groups present only in B (new entities): key column -> values.
    added_keys: dict[str, np.ndarray] = field(default_factory=dict)
    #: Groups present only in A (removed entities): key column -> values.
    removed_keys: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def matched(self) -> int:
        """Number of groups present on both sides."""
        return int(self.changed.size)

    @property
    def num_changed(self) -> int:
        """Matched groups where at least one metric differs."""
        return int(self.changed.sum())

    @property
    def num_added(self) -> int:
        """Groups present only in B."""
        values = next(iter(self.added_keys.values()), None)
        return 0 if values is None else int(values.size)

    @property
    def num_removed(self) -> int:
        """Groups present only in A."""
        values = next(iter(self.removed_keys.values()), None)
        return 0 if values is None else int(values.size)

    @property
    def identical(self) -> bool:
        """No changed groups and no added/removed entities."""
        return not (self.num_changed or self.num_added or self.num_removed)

    # -- materialisation ------------------------------------------------ #
    def _key_row(self, source: Mapping[str, np.ndarray], index: int) -> dict:
        return {name: source[name][index].item()
                if source[name].dtype.kind != "U" else str(source[name][index])
                for name in self.keys}

    def changed_rows(self, limit: Optional[int] = None) -> list[dict]:
        """Changed matched groups as dicts (keys + per-metric a/b/delta)."""
        rows = []
        for index in np.flatnonzero(self.changed)[:limit]:
            row = self._key_row(self.key_arrays, int(index))
            for metric in self.metrics:
                row[metric] = {
                    "a": self.a[metric][index].item(),
                    "b": self.b[metric][index].item(),
                    "delta": self.delta[metric][index].item(),
                }
            rows.append(row)
        return rows

    def added_rows(self, limit: Optional[int] = None) -> list[dict]:
        """New-entity group keys as dicts."""
        return [self._key_row(self.added_keys, i)
                for i in range(self.num_added)][:limit]

    def removed_rows(self, limit: Optional[int] = None) -> list[dict]:
        """Removed-entity group keys as dicts."""
        return [self._key_row(self.removed_keys, i)
                for i in range(self.num_removed)][:limit]


@dataclass
class StoreDiff:
    """Per-kind diffs of two stores, plus the kinds that could not diff."""

    kinds: dict[str, KindDiff] = field(default_factory=dict)
    #: Row kinds present in at least one store but lacking a DiffSpec.
    skipped: tuple[str, ...] = ()

    @property
    def identical(self) -> bool:
        """Every diffed kind came back identical."""
        return all(diff.identical for diff in self.kinds.values())

    def summary(self) -> dict[str, dict]:
        """Per-kind counts: matched/changed/added/removed and row totals."""
        return {
            kind: {"rows_a": diff.rows_a, "rows_b": diff.rows_b,
                   "matched": diff.matched, "changed": diff.num_changed,
                   "added": diff.num_added, "removed": diff.num_removed}
            for kind, diff in self.kinds.items()
        }


# --------------------------------------------------------------------------- #
# Engine
# --------------------------------------------------------------------------- #
def _gather(store, spec: DiffSpec,
            where: Sequence[tuple[str, str, object]]) -> dict[str, np.ndarray]:
    """One side's key + metric columns through the Query gather path."""
    query = store.query(spec.kind)
    for column, op, value in where:
        query.where(column, op, value)
    needed = dict.fromkeys(
        spec.keys + tuple(m.column for m in spec.metrics
                          if m.column is not None))
    return query.arrays(*needed)


def _encode_keys(spec: DiffSpec, a: Mapping[str, np.ndarray],
                 b: Mapping[str, np.ndarray]):
    """Radix-encode both sides' key tuples over one shared vocabulary.

    Returns ``(code_a, code_b, uniques)`` where ``uniques`` holds each key
    column's shared vocabulary — the decode radix.  A code compares equal
    across sides iff every key column compares equal; code *order* is an
    implementation detail (first-occurrence for string columns, sorted
    for numeric ones).
    """
    na = next(iter(a.values())).size if a else 0
    nb = next(iter(b.values())).size if b else 0
    code_a = np.zeros(na, dtype=np.int64)
    code_b = np.zeros(nb, dtype=np.int64)
    uniques: list[np.ndarray] = []
    space = 1
    for name in spec.keys:
        combined = np.concatenate([a[name], b[name]])
        inverse, u = _factorize(combined)
        uniques.append(u)
        radix = max(len(u), 1)
        space *= radix
        if space > _MAX_KEY_SPACE:
            raise ValueError(
                f"diff of kind {spec.kind!r}: key cardinality over "
                f"{spec.keys} exceeds the int64 encoding space")
        code_a = code_a * radix + inverse[:na]
        code_b = code_b * radix + inverse[na:]
    return code_a, code_b, uniques


#: Max distinct values the scan-based string factorizer tries before
#: falling back to a sort-based ``np.unique`` (the scan is O(n * K)).
_SCAN_VOCAB_LIMIT = 64


def _factorize(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(inverse, uniques)`` such that ``uniques[inverse] == values``.

    Equivalent to ``np.unique(values, return_inverse=True)`` up to the
    order of ``uniques``.  String columns take a scan-based path: diff
    group keys are low-cardinality (device names, scenarios, regions),
    so K whole-column equality scans beat sorting millions of UCS4
    strings by a wide margin; past :data:`_SCAN_VOCAB_LIMIT` distinct
    values the scan abandons and falls back to the sort.
    """
    if values.dtype.kind != "U" or values.size == 0:
        uniques, inverse = np.unique(values, return_inverse=True)
        return inverse, uniques
    inverse = np.zeros(values.size, dtype=np.int64)
    remaining = np.ones(values.size, dtype=bool)
    vocab: list[str] = []
    while remaining.any():
        if len(vocab) >= _SCAN_VOCAB_LIMIT:
            uniques, inverse = np.unique(values, return_inverse=True)
            return inverse, uniques
        value = values[int(remaining.argmax())]
        matches = values == value
        inverse[matches] = len(vocab)
        vocab.append(value)
        remaining &= ~matches
    return inverse, np.asarray(vocab, dtype=values.dtype)


def _decode_keys(spec: DiffSpec, codes: np.ndarray,
                 uniques: Sequence[np.ndarray]) -> dict[str, np.ndarray]:
    """Invert :func:`_encode_keys` for one array of group codes."""
    values: dict[str, np.ndarray] = {}
    remainder = codes.copy()
    for name, u in zip(reversed(spec.keys), reversed(list(uniques))):
        radix = max(len(u), 1)
        values[name] = u[remainder % radix] if len(u) else \
            np.empty(0, dtype=u.dtype)
        remainder //= radix
    return {name: values[name] for name in spec.keys}


def _group_sum(values: np.ndarray, inverse: np.ndarray, order: np.ndarray,
               starts: np.ndarray, n_groups: int) -> np.ndarray:
    """Per-group sum, exact and order-stable per dtype class.

    Integers sum via ``reduceat`` in int64 — exact for any order.  Floats
    sum via ``bincount`` weights, which accumulates **sequentially in row
    order** — the one float summation order a per-row reference can
    reproduce, making vectorised-vs-reference equality bit-exact.
    """
    if values.dtype.kind in "iub":
        return np.add.reduceat(values.astype(np.int64, copy=False)[order],
                               starts)
    return np.bincount(inverse, weights=values, minlength=n_groups)


def _reduce(spec: DiffSpec, arrays: Mapping[str, np.ndarray],
            codes: np.ndarray):
    """Group-reduce one side's metrics; returns ``(group_codes, metrics)``.

    Every reduction is a pure function of each group's row set and row
    order (see :func:`_group_sum`), so it is deterministic for a
    deterministic store and identical on both sides of a self-diff.
    """
    group_codes, inverse = np.unique(codes, return_inverse=True)
    n_groups = len(group_codes)
    metrics: dict[str, np.ndarray] = {}
    if n_groups == 0:
        for m in spec.metrics:
            dtype = np.int64 if m.agg == "count" else np.float64
            metrics[m.out_name] = np.empty(0, dtype=dtype)
        return group_codes, metrics
    order = np.argsort(inverse, kind="stable")
    starts = np.searchsorted(inverse[order], np.arange(n_groups))
    counts = np.bincount(inverse, minlength=n_groups)
    for m in spec.metrics:
        if m.agg == "count":
            metrics[m.out_name] = counts
            continue
        values = arrays[m.column]
        if m.agg == "sum":
            metrics[m.out_name] = _group_sum(values, inverse, order, starts,
                                             n_groups)
        elif m.agg == "mean":
            metrics[m.out_name] = _group_sum(values, inverse, order, starts,
                                             n_groups) / counts
        elif m.agg == "min":
            metrics[m.out_name] = np.minimum.reduceat(values[order], starts)
        else:  # max
            metrics[m.out_name] = np.maximum.reduceat(values[order], starts)
    return group_codes, metrics


def diff_kind(store_a, store_b, spec: DiffSpec, *,
              where: Sequence[tuple[str, str, object]] = ()) -> KindDiff:
    """Diff one row kind between two stores under a spec.

    ``where`` predicates (``(column, op, value)`` triples) apply to both
    sides through the query engine's predicate pushdown, so e.g. a
    ``run_id`` filter over a long telemetry sidecar never reads segments
    whose stats exclude the run.
    """
    kind = kind_for(spec.kind)  # validates the kind exists
    for name in spec.keys:
        kind.column(name)
    for m in spec.metrics:
        if m.column is not None:
            kind.column(m.column)

    a = _gather(store_a, spec, where)
    b = _gather(store_b, spec, where)
    rows_a = next(iter(a.values())).size if a else 0
    rows_b = next(iter(b.values())).size if b else 0
    code_a, code_b, uniques = _encode_keys(spec, a, b)
    groups_a, metrics_a = _reduce(spec, a, code_a)
    groups_b, metrics_b = _reduce(spec, b, code_b)

    common, index_a, index_b = np.intersect1d(
        groups_a, groups_b, assume_unique=True, return_indices=True)
    only_a = np.setdiff1d(groups_a, groups_b, assume_unique=True)
    only_b = np.setdiff1d(groups_b, groups_a, assume_unique=True)

    diff = KindDiff(kind=spec.kind, keys=spec.keys,
                    metrics=spec.metric_names, rows_a=rows_a, rows_b=rows_b)
    diff.key_arrays = _decode_keys(spec, common, uniques)
    changed = np.zeros(len(common), dtype=bool)
    for name in spec.metric_names:
        va = metrics_a[name][index_a]
        vb = metrics_b[name][index_b]
        diff.a[name] = va
        diff.b[name] = vb
        diff.delta[name] = vb - va
        changed |= va != vb
    diff.changed = changed
    diff.added_keys = _decode_keys(spec, only_b, uniques)
    diff.removed_keys = _decode_keys(spec, only_a, uniques)
    return diff


def diff_stores(store_a, store_b, *, kinds: Optional[Sequence[str]] = None,
                specs: Optional[Mapping[str, DiffSpec]] = None,
                where: Sequence[tuple[str, str, object]] = ()) -> StoreDiff:
    """Diff every shared-spec row kind of two stores.

    ``kinds`` restricts (and validates) which kinds diff; by default every
    kind committed in *either* store that has a spec is diffed — a kind
    missing from one side comes back as all-added or all-removed, which is
    what "this store grew a new row kind" should look like.  Kinds with
    no spec are reported in :attr:`StoreDiff.skipped`, not silently
    dropped.
    """
    specs = dict(DIFF_SPECS if specs is None else specs)
    present = tuple(dict.fromkeys(store_a.kinds() + store_b.kinds()))
    if kinds is None:
        selected = [kind for kind in present if kind in specs]
        skipped = tuple(kind for kind in present if kind not in specs)
    else:
        for kind in kinds:
            if kind not in specs:
                raise KeyError(f"no diff spec registered for row kind "
                               f"{kind!r} (have {sorted(specs)})")
        selected, skipped = list(kinds), ()
    result = StoreDiff(skipped=skipped)
    for kind in selected:
        result.kinds[kind] = diff_kind(store_a, store_b, specs[kind],
                                       where=where)
    return result


# --------------------------------------------------------------------------- #
# Per-row reference (the benchmark's semantic anchor)
# --------------------------------------------------------------------------- #
def diff_kind_reference(store_a, store_b, spec: DiffSpec) -> dict:
    """Row-at-a-time reference diff of one kind (dict accumulation).

    Same inputs, same outputs as :func:`diff_kind` — but every row passes
    through a Python dict and every group updates one at a time.  The
    benchmark gate requires the vectorised engine to beat this by >= 5x;
    the tests require it to agree exactly.

    Returns ``{"changed": {key_tuple: {metric: (a, b, delta)}},
    "added": set, "removed": set, "matched": int}``.
    """
    def accumulate(store) -> dict:
        groups: dict[tuple, dict] = {}
        arrays = _gather(store, spec, ())
        length = next(iter(arrays.values())).size if arrays else 0
        for i in range(length):
            key = tuple(
                arrays[name][i].item() if arrays[name].dtype.kind != "U"
                else str(arrays[name][i]) for name in spec.keys)
            entry = groups.get(key)
            if entry is None:
                entry = groups[key] = {"_count": 0}
                for m in spec.metrics:
                    if m.agg != "count":
                        entry[m.out_name] = []
            entry["_count"] += 1
            for m in spec.metrics:
                if m.agg != "count":
                    entry[m.out_name].append(arrays[m.column][i].item())
        reduced: dict[tuple, dict] = {}
        for key, entry in groups.items():
            out = {}
            for m in spec.metrics:
                if m.agg == "count":
                    out[m.out_name] = entry["_count"]
                    continue
                # Sequential accumulation in row order: Python float
                # addition is IEEE double addition, the same order the
                # engine's bincount-weights sum applies — so the equality
                # assertions compare bit-exact.
                values = entry[m.out_name]
                if m.agg == "sum":
                    total = 0 if isinstance(values[0], int) else 0.0
                    for v in values:
                        total = total + v
                    out[m.out_name] = total
                elif m.agg == "mean":
                    total = 0.0
                    for v in values:
                        total = total + v
                    out[m.out_name] = total / len(values)
                elif m.agg == "min":
                    out[m.out_name] = min(values)
                else:
                    out[m.out_name] = max(values)
            reduced[key] = out
        return reduced

    a = accumulate(store_a)
    b = accumulate(store_b)
    changed: dict[tuple, dict] = {}
    matched = 0
    for key, metrics_a in a.items():
        metrics_b = b.get(key)
        if metrics_b is None:
            continue
        matched += 1
        deltas = {}
        for name in spec.metric_names:
            if metrics_a[name] != metrics_b[name]:
                deltas[name] = (metrics_a[name], metrics_b[name],
                                metrics_b[name] - metrics_a[name])
        if deltas:
            changed[key] = deltas
    return {
        "changed": changed,
        "added": set(b) - set(a),
        "removed": set(a) - set(b),
        "matched": matched,
    }
