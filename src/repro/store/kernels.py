"""Vectorised grouped reduction kernels with an enforced per-group reference.

:meth:`repro.store.query.Query.aggregate` used to evaluate every group
through a Python loop of NumPy lambdas — fine for a dozen groups, a hot
spot for a campaign's thousands of ``(device, bin)`` cells.  This module
replaces that loop with flat array kernels over the whole matched row
set at once:

* ``count``        — one ``bincount`` over the group indices;
* ``sum``/``mean``/``std`` — integer/bool sums via ``np.add.reduceat``
  in int64 (exact, associative), float accumulation via ``np.bincount``
  weights (sequential in row order — the same discipline as
  :mod:`repro.store.diff`); ``std`` composes the same two passes the
  per-row definition uses (mean, then mean of squared deviations);
* ``min``/``max``  — ``ufunc.reduceat`` over the group-gathered array
  (lexicographic segment endpoints for string columns);
* ``median``/``p50``/``p90``/``p99``/``p999`` — one ``lexsort`` per
  column, then a vectorised replica of NumPy's linear-interpolation
  quantile (virtual index, gamma, and the ``gamma >= 0.5`` lerp branch),
  bit-identical to ``np.quantile`` per group.

**The reference defines the semantics.**  :data:`REFERENCE_REDUCERS` is
the per-group slow path the kernels are held bit-identical to (the
benchmark gate in ``benchmarks/test_bench_query.py`` and the property
tests in ``tests/test_query_engine.py`` enforce it).  Grouped float
``sum``/``mean``/``std`` are *defined* as sequential row-order
accumulation — not NumPy's pairwise summation — because row-order sums
are the one float discipline that survives vectorisation, chunking and
re-segmentation unchanged (see ``store/diff.py``); every other reduction
keeps its original NumPy definition (``np.quantile``, ``np.median``,
``min``/``max``, exact integer sums).  Ungrouped aggregation is
untouched by all of this: with no per-group loop to replace it still
evaluates the plain :data:`repro.store.query.AGGREGATIONS` lambdas.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, Union

import numpy as np

__all__ = ["GroupedReducer", "REFERENCE_REDUCERS", "factorize_parts",
           "decompose_keys"]

#: Quantile per percentile-named reduction.
_QUANTILES = {"p50": 0.50, "p90": 0.90, "p99": 0.99, "p999": 0.999,
              "median": 0.5}


def _sequential_sum(values: np.ndarray) -> float:
    """Row-order float64 accumulation — the grouped float-sum definition.

    Equivalent to what ``np.bincount`` does per bucket: every element is
    converted to float64 and added left to right, so the result is
    independent of how the rows were ever chunked or segmented.
    """
    total = 0.0
    for value in values.tolist():
        total += value
    return total


def _reference_sum(values: np.ndarray) -> Union[int, float]:
    if values.dtype.kind == "f":
        return _sequential_sum(values)
    return values.sum().item()  # integer/bool sums are exact in any order


def _reference_mean(values: np.ndarray) -> float:
    return _sequential_sum(values) / values.size


def _reference_min(values: np.ndarray):
    if values.dtype.kind == "U":
        return min(values.tolist())  # no min ufunc loop for unicode
    return values.min().item()


def _reference_max(values: np.ndarray):
    if values.dtype.kind == "U":
        return max(values.tolist())
    return values.max().item()


def _reference_std(values: np.ndarray) -> float:
    mean = _sequential_sum(values) / values.size
    acc = 0.0
    for value in values.tolist():
        deviation = value - mean
        acc += deviation * deviation
    return math.sqrt(acc / values.size)


#: Per-group reference reducers: the semantic source of truth the grouped
#: kernels are gated against.  ``count``/``min``/``max``/``median``/
#: percentiles are the original NumPy definitions; float ``sum``/``mean``/
#: ``std`` are row-order sequential (see the module docstring).
REFERENCE_REDUCERS: dict[str, Callable[[np.ndarray], object]] = {
    "count": lambda a: int(a.size),
    "sum": _reference_sum,
    "mean": _reference_mean,
    "median": lambda a: np.median(a).item(),
    "min": _reference_min,
    "max": _reference_max,
    "std": _reference_std,
    "p50": lambda a: np.quantile(a, 0.50).item(),
    "p90": lambda a: np.quantile(a, 0.90).item(),
    "p99": lambda a: np.quantile(a, 0.99).item(),
    "p999": lambda a: np.quantile(a, 0.999).item(),
}


def factorize_parts(parts: Sequence) -> tuple[np.ndarray, np.ndarray]:
    """``np.unique(concatenated, return_inverse=True)`` without decoding.

    ``parts`` holds one entry per surviving segment: either a
    :class:`repro.store.columnar.CodedColumn` (dictionary codes + sorted
    vocabulary, never materialised as unicode rows) or a plain decoded
    array (JSONL segments, raw-encoded columns).  Because every
    per-segment vocabulary is sorted — NumPy's string sort order *is*
    the dictionary code order — unifying the vocabularies with one
    ``np.unique`` and remapping each segment's codes through
    ``searchsorted`` reproduces exactly what ``np.unique`` over the
    decoded concatenation would return: the sorted distinct values
    actually present, and an int64 inverse mapping each row to them.
    """
    vocabularies = []
    for part in parts:
        if isinstance(part, np.ndarray):
            vocabularies.append(np.unique(part))
        else:
            vocabularies.append(part.values)
    if not vocabularies:
        empty = np.empty(0, dtype=np.str_)
        return empty, np.empty(0, dtype=np.int64)
    vocabulary = np.unique(np.concatenate(vocabularies))
    remapped = []
    for part, local in zip(parts, vocabularies):
        lookup = np.searchsorted(vocabulary, local)
        if isinstance(part, np.ndarray):
            remapped.append(lookup[np.searchsorted(local, part)])
        else:
            remapped.append(lookup[part.codes])
    present, inverse = np.unique(np.concatenate(remapped), return_inverse=True)
    return vocabulary[present], inverse


def decompose_keys(group_keys: np.ndarray,
                   radix_sizes: Sequence[int]) -> list[np.ndarray]:
    """Invert the mixed-radix group-key encoding back to per-column indices.

    ``aggregate`` folds the group columns into one int64 key
    (``key = key * len(uniques) + inverse`` per column); this peels the
    digits back off so each group's label is read from the per-column
    unique arrays — for dictionary columns that means only group
    *representatives* are ever decoded, not rows.
    """
    indices: list[np.ndarray] = [group_keys] * len(radix_sizes)
    rest = group_keys
    for position in range(len(radix_sizes) - 1, -1, -1):
        rest, digit = np.divmod(rest, radix_sizes[position])
        indices[position] = digit
    return indices


class GroupedReducer:
    """All declared reductions of one grouped aggregation, vectorised.

    Built once per ``aggregate()`` call from the group index vector
    (``key_inverse`` maps each matched row to its 0-based group, groups
    numbered in ascending group-key order).  Per-column derived arrays —
    the group-gathered view for ``reduceat`` and the within-group sorted
    view for order statistics — are computed lazily and shared between
    reductions over the same column, so ``p50,p90,p99`` of one column
    cost one ``lexsort``, not three.

    Every ``reduce`` result is bit-identical to applying the matching
    :data:`REFERENCE_REDUCERS` entry to each group's rows in original
    row order (enforced by tests and the benchmark gate).
    """

    def __init__(self, key_inverse: np.ndarray, num_groups: int) -> None:
        self.key_inverse = key_inverse
        self.num_groups = int(num_groups)
        # Plain (unstable) argsort: no kernel depends on within-group row
        # order — integer sums are exact in any order, extrema and sorted
        # order statistics are order-free, and float sums go through
        # ``bincount`` over the *original* row order, not this gather.
        order = np.argsort(key_inverse)
        starts = np.searchsorted(key_inverse[order], np.arange(num_groups))
        self._order = order
        self._starts = starts
        self._counts = np.bincount(key_inverse, minlength=num_groups)
        self._gathered: dict[str, np.ndarray] = {}
        self._sorted: dict[str, np.ndarray] = {}

    # -- derived views --------------------------------------------------- #
    def _gather(self, name: str, values: np.ndarray) -> np.ndarray:
        """``values`` re-ordered group-contiguous, row order kept per group."""
        gathered = self._gathered.get(name)
        if gathered is None:
            gathered = values[self._order]
            self._gathered[name] = gathered
        return gathered

    def _sort(self, name: str, values: np.ndarray) -> np.ndarray:
        """``values`` sorted ascending within each group's segment.

        Sorts each group's slice of the gathered copy in place rather
        than ``lexsort``-ing globally: same result (each segment ends up
        ascending; tie order is irrelevant once only the values remain),
        but O(n log(n/G)) and several times faster than a stable global
        two-key mergesort.
        """
        ordered = self._sorted.get(name)
        if ordered is None:
            ordered = self._gather(name, values).copy()
            ends = np.append(self._starts[1:], self.key_inverse.size)
            for start, end in zip(self._starts.tolist(), ends.tolist()):
                ordered[start:end].sort()
            self._sorted[name] = ordered
        return ordered

    # -- kernels ---------------------------------------------------------- #
    def _sums(self, name: str, values: np.ndarray) -> np.ndarray:
        """Per-group sums under the reference discipline (see module doc)."""
        if values.dtype.kind in "ibu":
            gathered = self._gather(name, values).astype(np.int64, copy=False)
            return np.add.reduceat(gathered, self._starts)
        return self._float_sums(values)

    def _float_sums(self, values: np.ndarray) -> np.ndarray:
        """Per-group float64 sums, each element converted then accumulated.

        ``bincount`` weights accumulate bucket-sequentially in row order —
        exactly the reference's left-to-right Python loop, including the
        per-element int→float conversion ``mean``/``std`` are defined
        over (which an exact int64 pre-sum would *not* reproduce once
        values pass 2**53).
        """
        return np.bincount(self.key_inverse, weights=values,
                           minlength=self.num_groups)

    def _extremum(self, name: str, values: np.ndarray,
                  ufunc: np.ufunc, end: bool) -> np.ndarray:
        if values.dtype.kind == "U":
            # No min/max ufunc loops for unicode: read the sorted segment
            # endpoints instead (== lexicographic min/max).
            ordered = self._sort(name, values)
            if end:
                ends = np.append(self._starts[1:], self.key_inverse.size)
                return ordered[ends - 1]
            return ordered[self._starts]
        return ufunc.reduceat(self._gather(name, values), self._starts)

    def _quantile(self, name: str, values: np.ndarray,
                  q: float) -> np.ndarray:
        """Per-group ``np.quantile(..., q)`` (linear method), vectorised.

        Replicates NumPy's arithmetic step for step — virtual index over
        ``n - 1``, floor/gamma split, and the two-branch lerp that
        switches at ``gamma >= 0.5`` — so each group's value equals the
        scalar ``np.quantile`` of its rows to the last bit.
        """
        ordered = self._sort(name, values).astype(np.float64, copy=False)
        counts = self._counts
        virtual = (counts - 1) * q
        previous = np.floor(virtual)
        gamma = virtual - previous
        low_idx = self._starts + previous.astype(np.int64)
        high_idx = self._starts + np.minimum(previous.astype(np.int64) + 1,
                                             counts - 1)
        low = ordered[low_idx]
        high = ordered[high_idx]
        diff = high - low
        return np.where(gamma >= 0.5,
                        high - diff * (1 - gamma),
                        low + diff * gamma)

    def _median(self, name: str, values: np.ndarray) -> np.ndarray:
        """Per-group ``np.median``: mean of the two middle sorted values."""
        ordered = self._sort(name, values).astype(np.float64, copy=False)
        counts = self._counts
        low = ordered[self._starts + (counts - 1) // 2]
        high = ordered[self._starts + counts // 2]
        with np.errstate(over="ignore"):
            even = (low + high) / 2.0
        return np.where(counts % 2, high, even)

    # -- dispatch ---------------------------------------------------------- #
    def reduce(self, name: str, values: np.ndarray, fn: str) -> list:
        """Per-group scalars of one reduction, ascending group order.

        Scalar types match the per-group reference exactly: ``count`` is
        ``int``, ``sum``/``min``/``max`` keep the column's native scalar
        type, everything else is ``float``.
        """
        if fn == "count":
            return self._counts.tolist()
        if fn == "sum":
            return self._sums(name, values).tolist()
        if fn == "mean":
            return (self._float_sums(values) / self._counts).tolist()
        if fn == "std":
            means = self._float_sums(values) / self._counts
            deviations = values - means[self.key_inverse]
            squares = np.bincount(self.key_inverse,
                                  weights=deviations * deviations,
                                  minlength=self.num_groups)
            return np.sqrt(squares / self._counts).tolist()
        if fn == "min":
            return self._extremum(name, values, np.minimum, end=False).tolist()
        if fn == "max":
            return self._extremum(name, values, np.maximum, end=True).tolist()
        if fn == "median":
            return self._median(name, values).tolist()
        quantile = _QUANTILES.get(fn)
        if quantile is None:
            raise ValueError(f"unknown grouped reduction {fn!r}")
        return self._quantile(name, values, quantile).tolist()
