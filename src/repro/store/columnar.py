"""The packed binary columnar segment payload (store format version 3).

A columnar segment stores one contiguous little-endian buffer per schema
column behind a small JSON header, so sealing a segment is a handful of
``ndarray.tobytes`` calls and opening one is a handful of zero-copy
``np.frombuffer`` views — no per-row JSON encode/decode anywhere on the
path.  The payload layout is::

    b"RCS1"                      # magic, 4 bytes
    <u32 little-endian>          # byte length of the JSON header
    header JSON (UTF-8)          # {"kind", "rows", "columns": [...]}
    column buffer 0              # header.columns[0]["nbytes"] bytes
    column buffer 1
    ...

Each header column entry records ``{"name", "encoding", "dtype", ...}``
where ``dtype`` is the NumPy dtype string of the value buffer (always
little-endian, e.g. ``"<f8"``, ``"<i8"``, ``"|b1"``, ``"<U12"``).  Two
encodings exist:

* ``"raw"`` — the buffer is the array's memory verbatim (numeric columns,
  and string columns whose values barely repeat);
* ``"dict"`` — low-cardinality string columns (device names, scenarios,
  route targets... — the overwhelmingly common case in event streams)
  store their distinct values once as a fixed-width UCS-4 table plus one
  small unsigned code per row (``u1``/``u2``/``u4``, whichever fits), which
  shrinks the hot string columns from ~100 bytes/row to ~1 byte/row and is
  what lets columnar ingest outrun the disk rather than the CPU.  Decoding
  is a single fancy-index gather, and the decoded array's dtype width (the
  longest value present) matches what pivoting the same rows through
  ``np.array`` would produce, so the two paths stay interchangeable.

Either way a value read back compares bit-for-bit equal to the value
written — the same exactness contract the JSONL format keeps via
shortest-repr floats.

A column entry may additionally carry ``"compression": "zlib"``: the
column's buffer section (values table + codes for dict columns, the array
memory for raw ones) is stored zlib-deflated, with ``"raw_nbytes"``
recording the uncompressed section length and ``"nbytes"`` the stored
(compressed) length.  Compression is chosen per column at pack time and
only kept when it actually shrinks the section, so incompressible float
noise stays raw (and zero-copy readable) while repetitive columns shrink.
The segment checksum always covers the durable bytes — i.e. the
*compressed* payload for compressed columns.

Reads come in two flavours: :func:`unpack_columns` decodes every column
eagerly into a plain dict, and :func:`open_columns` returns a lazy
:class:`LazyColumns` mapping that decodes a column on first access — over
an ``mmap`` buffer, raw uncompressed columns become true zero-copy views
of the on-disk pages, which is what keeps queries over multi-gigabyte
campaign stores memory-flat.

This module is the pure codec: bytes in, arrays out.  File IO, checksums
and manifest plumbing live in :mod:`repro.store.segment`; malformed input
raises :class:`ValueError` here and is wrapped into
:class:`~repro.store.segment.StoreCorruptionError` there.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Iterator, Mapping, NamedTuple, Optional

import numpy as np

from repro.store.schema import RowKind

__all__ = ["COLUMNAR_MAGIC", "CodedColumn", "pack_columns", "unpack_columns",
           "open_columns", "LazyColumns", "coerce_batch"]


class CodedColumn(NamedTuple):
    """A dictionary-encoded column as codes + vocabulary, un-gathered.

    ``values`` is the sorted distinct-value table (``np.unique`` order —
    so code order *is* string sort order) and ``codes`` the per-row
    ``u1``/``u2``/``u4`` indices into it; ``values[codes]`` is the decoded
    array.  The query engine evaluates predicates against ``values`` once
    and filters ``codes`` instead of ever materialising unicode rows for
    filtered-out data (see :meth:`LazyColumns.coded`); a ``CodedColumn``
    whose codes were masked down to the surviving rows still decodes to
    exactly what masking the decoded array would have produced.
    """

    codes: np.ndarray
    values: np.ndarray

    def decode(self) -> np.ndarray:
        """The decoded unicode array (one fancy-index gather)."""
        return self.values[self.codes]

#: First four payload bytes of every columnar segment.
COLUMNAR_MAGIC = b"RCS1"

_HEADER_LEN = struct.Struct("<I")

#: Sections smaller than this are never compressed — the deflate header
#: would eat the savings and every read would pay a pointless inflate.
COMPRESS_MIN_BYTES = 64

#: zlib level for compressed columns: 6 is the speed/size sweet spot for
#: the repetitive integer/string sections that actually win here.
COMPRESS_LEVEL = 6


def coerce_batch(kind: RowKind, columns: Mapping[str, np.ndarray]
                 ) -> dict[str, np.ndarray]:
    """Validate and normalise one column batch against a row kind's schema.

    Every schema column must be present and all columns must share one
    length; extra keys are rejected (a misspelt column name must not drop
    data silently).  Values are coerced to the schema dtype — the one place
    the batch path type-checks, amortised over the whole batch instead of
    per row.

    The returned arrays never alias a *mutable* caller buffer: values that
    coerce get a new array anyway, and values that still touch caller
    memory are copied — the batch counterpart of ``append_row``'s
    defensive ``dict(row)``, so a producer may reuse its buffers after the
    append without silently rewriting data that is still waiting to be
    sealed.  Only arrays that are immutable through their whole base chain
    (read-only with no writable ancestor — what the simulators'
    ``column_batch`` methods hand over) are trusted without a copy; a
    read-only *view* of a writable buffer is not, since the base can still
    be written through.
    """
    missing = [c.name for c in kind.columns if c.name not in columns]
    if missing:
        raise ValueError(
            f"batch for kind {kind.name!r} is missing columns {missing}")
    extra = sorted(set(columns) - kind.column_name_set)
    if extra:
        raise ValueError(
            f"batch for kind {kind.name!r} has unknown columns {extra}")
    coerced: dict[str, np.ndarray] = {}
    rows = None
    for column in kind.columns:
        original = columns[column.name]
        array = np.asarray(original)
        if array.ndim != 1:
            raise ValueError(
                f"column {column.name!r} must be 1-D, got shape {array.shape}")
        if column.dtype == "str":
            if array.dtype.kind != "U":
                array = array.astype(np.str_)
        elif array.dtype != column.numpy_dtype:
            array = array.astype(column.numpy_dtype)
        if not _chain_readonly(array) and (array is original
                                           or array.base is not None):
            # The array still aliases memory the caller can write (either
            # their own object, or a zero-copy wrap of their buffer).
            array = array.copy()
        if rows is None:
            rows = array.size
        elif array.size != rows:
            raise ValueError(
                f"column {column.name!r} holds {array.size} values, "
                f"expected {rows}")
        coerced[column.name] = array
    return coerced


def _chain_readonly(array: np.ndarray) -> bool:
    """Whether mutation is impossible through this array or any of its bases.

    ``flags.writeable`` alone is not enough: a read-only view of a writable
    base can still change under us through the base, so only an all-read-only
    base chain ending in an owning array (or immutable ``bytes``) is trusted
    without a defensive copy.
    """
    while True:
        if array.flags.writeable:
            return False
        base = array.base
        if base is None:
            return True
        if isinstance(base, np.ndarray):
            array = base
            continue
        # Foreign buffer (mmap, memoryview, ...): immutable only for bytes.
        return isinstance(base, bytes)


def _little_endian(array: np.ndarray) -> np.ndarray:
    """The array with a little-endian (or endian-free) dtype."""
    if array.dtype.byteorder == ">":
        return array.astype(array.dtype.newbyteorder("<"))
    return array


def _payload_dtype(column: str, spec) -> np.dtype:
    """A header dtype string as a usable dtype, or :class:`ValueError`.

    A corrupt header can hold anything here — non-strings raise
    ``TypeError`` inside NumPy, ``"<U0"`` parses but has itemsize 0 (a
    division-by-zero trap downstream) — so every failure mode funnels into
    the codec's ``ValueError`` contract.
    """
    try:
        dtype = np.dtype(spec)
    except TypeError as error:
        raise ValueError(
            f"column {column!r} has an invalid dtype in its header: {error}")
    if dtype.itemsize <= 0:
        raise ValueError(
            f"column {column!r} has a zero-width dtype in its header")
    return dtype


def _codes_dtype(num_values: int) -> str:
    """Smallest unsigned dtype addressing a dictionary of this size."""
    if num_values <= 1 << 8:
        return "<u1"
    if num_values <= 1 << 16:
        return "<u2"
    return "<u4"


def _maybe_compress(entry: dict, section: bytes, compress: bool) -> bytes:
    """Deflate one column's buffer section when that actually helps.

    Mutates ``entry`` to record the compression and both byte lengths; the
    stored ``nbytes`` is always the on-disk section length (what offsets
    are computed from), ``raw_nbytes`` the decoded one.
    """
    if compress and len(section) >= COMPRESS_MIN_BYTES:
        deflated = zlib.compress(section, COMPRESS_LEVEL)
        if len(deflated) < len(section):
            entry["compression"] = "zlib"
            entry["raw_nbytes"] = len(section)
            entry["nbytes"] = len(deflated)
            return deflated
    entry["nbytes"] = len(section)
    return section


def pack_columns(kind: RowKind, columns: Mapping[str, np.ndarray], *,
                 distinct_out: Optional[dict] = None,
                 compress: bool = False) -> bytes:
    """Pack one validated column batch into the binary segment payload.

    ``distinct_out``, when given, is filled with each string column's sorted
    distinct-value array — computed here anyway to choose the encoding, and
    reusable for the manifest's pruning stats so sealing a segment runs
    ``np.unique`` once per column, not twice.  ``compress`` opts each
    column's buffer section into per-column zlib (kept only when smaller;
    see the module docstring for the header fields).
    """
    buffers: list[bytes] = []
    entries: list[dict] = []
    rows = 0
    for column in kind.columns:
        array = np.ascontiguousarray(_little_endian(columns[column.name]))
        rows = int(array.size)
        if column.dtype == "str":
            uniques, codes = np.unique(array, return_inverse=True)
            if distinct_out is not None:
                distinct_out[column.name] = uniques
            codes_dtype = _codes_dtype(uniques.size)
            encoded_nbytes = uniques.nbytes \
                + codes.size * np.dtype(codes_dtype).itemsize
            if encoded_nbytes < array.nbytes:
                values_payload = _little_endian(uniques).tobytes()
                codes_payload = codes.astype(codes_dtype).tobytes()
                entry = {
                    "name": column.name, "encoding": "dict",
                    "dtype": uniques.dtype.str,
                    "values_nbytes": len(values_payload),
                    "codes_dtype": codes_dtype,
                }
                buffers.append(_maybe_compress(
                    entry, values_payload + codes_payload, compress))
                entries.append(entry)
                continue
        entry = {"name": column.name, "encoding": "raw",
                 "dtype": array.dtype.str}
        buffers.append(_maybe_compress(entry, array.tobytes(), compress))
        entries.append(entry)
    header = json.dumps({"kind": kind.name, "rows": rows,
                         "columns": entries},
                        sort_keys=True).encode("utf-8")
    return b"".join([COLUMNAR_MAGIC, _HEADER_LEN.pack(len(header)), header,
                     *buffers])


def _parse_entry(entry: Mapping, offset: int, payload_len: int,
                 rows: int) -> dict:
    """Validate one header column entry; returns its normalised plan.

    Everything knowable without touching the column's bytes is checked
    here — bounds, dtypes, dictionary layout, and (for uncompressed
    sections, whose decoded length equals the stored one) the element
    count against ``rows`` — so :func:`open_columns` surfaces structural
    corruption eagerly even though decoding itself is lazy.
    """
    try:
        name = entry["name"]
        nbytes = int(entry["nbytes"])
        dtype = _payload_dtype(name, entry["dtype"])
    except (KeyError, TypeError) as error:
        raise ValueError(f"columnar header entry is malformed: {error}")
    if nbytes < 0 or payload_len < offset + nbytes:
        raise ValueError(
            f"columnar payload truncated inside column {name!r}")
    compression = entry.get("compression")
    if compression is None:
        raw_nbytes = nbytes
    elif compression == "zlib":
        try:
            raw_nbytes = int(entry["raw_nbytes"])
        except (KeyError, TypeError) as error:
            raise ValueError(f"columnar header entry is malformed: {error}")
        if raw_nbytes < 0:
            raise ValueError(
                f"column {name!r} has a negative decoded length")
    else:
        raise ValueError(
            f"column {name!r} uses unknown compression {compression!r}")
    plan = {"name": name, "offset": offset, "nbytes": nbytes,
            "raw_nbytes": raw_nbytes, "dtype": dtype,
            "compression": compression,
            "encoding": entry.get("encoding", "raw")}
    if plan["encoding"] == "dict":
        try:
            values_nbytes = int(entry["values_nbytes"])
            codes_dtype = _payload_dtype(name, entry["codes_dtype"])
        except (KeyError, TypeError) as error:
            raise ValueError(f"columnar header entry is malformed: {error}")
        if not 0 <= values_nbytes <= raw_nbytes:
            raise ValueError(
                f"column {name!r} dictionary sizes are inconsistent")
        codes_nbytes = raw_nbytes - values_nbytes
        if values_nbytes % dtype.itemsize or \
                codes_nbytes % codes_dtype.itemsize:
            raise ValueError(
                f"column {name!r} dictionary buffers are misaligned")
        plan["values_nbytes"] = values_nbytes
        plan["codes_dtype"] = codes_dtype
        if compression is None and \
                codes_nbytes // codes_dtype.itemsize != rows:
            raise ValueError(
                f"column {name!r} decodes to "
                f"{codes_nbytes // codes_dtype.itemsize} values, "
                f"expected {rows}")
    else:
        if raw_nbytes % dtype.itemsize:
            raise ValueError(
                f"column {name!r} buffer is not a whole number of "
                f"{dtype} values")
        if compression is None and raw_nbytes // dtype.itemsize != rows:
            raise ValueError(
                f"column {name!r} decodes to {raw_nbytes // dtype.itemsize} "
                f"values, expected {rows}")
    return plan


def _decode_dict(source, start: int, plan: dict, rows: int) -> CodedColumn:
    """View a dict-encoded column's codes and vocabulary, validated.

    Zero-copy ``frombuffer`` views over ``source`` (the payload, or an
    inflated section); the code bounds check — every failure mode a
    corrupt dictionary can produce — happens here, so the coded and the
    decoded read paths surface corruption identically.
    """
    name = plan["name"]
    dtype = plan["dtype"]
    values_nbytes = plan["values_nbytes"]
    codes_dtype = plan["codes_dtype"]
    codes_nbytes = plan["raw_nbytes"] - values_nbytes
    values = np.frombuffer(source, dtype=dtype,
                           count=values_nbytes // dtype.itemsize,
                           offset=start)
    codes = np.frombuffer(source, dtype=codes_dtype,
                          count=codes_nbytes // codes_dtype.itemsize,
                          offset=start + values_nbytes)
    if codes.size != rows:
        raise ValueError(
            f"column {name!r} decodes to {codes.size} values, "
            f"expected {rows}")
    if codes.size and (not values.size
                       or int(codes.max()) >= values.size):
        raise ValueError(
            f"column {name!r} has codes outside its dictionary")
    return CodedColumn(codes, values)


def _inflated_section(payload, plan: dict):
    """``(source, start)`` of one column's decoded buffer section."""
    name = plan["name"]
    offset, nbytes = plan["offset"], plan["nbytes"]
    if plan["compression"] is None:
        return payload, offset
    try:
        source = zlib.decompress(bytes(payload[offset:offset + nbytes]))
    except zlib.error as error:
        raise ValueError(
            f"column {name!r} compressed section is corrupt: {error}")
    if len(source) != plan["raw_nbytes"]:
        raise ValueError(
            f"column {name!r} inflates to {len(source)} bytes, header "
            f"says {plan['raw_nbytes']}")
    return source, 0


def _decode_column(payload, plan: dict, rows: int) -> np.ndarray:
    """Decode one column from its validated plan (see :func:`_parse_entry`).

    Uncompressed sections decode as zero-copy ``frombuffer`` views of
    ``payload`` (bytes or an ``mmap``); compressed ones inflate into a
    fresh immutable ``bytes`` first.  Dictionary columns additionally
    gather their decoded values — the one materialising step.
    """
    name = plan["name"]
    source, start = _inflated_section(payload, plan)
    dtype = plan["dtype"]
    if plan["encoding"] == "dict":
        array = _decode_dict(source, start, plan, rows).decode()
        array.setflags(write=False)
        return array
    array = np.frombuffer(source, dtype=dtype,
                          count=plan["raw_nbytes"] // dtype.itemsize,
                          offset=start)
    if array.size != rows:
        raise ValueError(
            f"column {name!r} decodes to {array.size} values, "
            f"expected {rows}")
    return array


class LazyColumns(Mapping):
    """Columns of one payload, decoded on first access and cached.

    Behaves as an ordinary ``Mapping[str, np.ndarray]`` in schema column
    order.  The payload may be ``bytes`` or a read-only ``mmap`` — in the
    latter case raw uncompressed columns are zero-copy views of the mapped
    pages, so holding the mapping open costs page-table entries, not
    resident memory, and the query engine's column pruning means columns a
    query never touches are never decoded at all.  Decode failures raise
    :class:`ValueError` (the codec's corruption contract) at access time.
    """

    __slots__ = ("_payload", "_rows", "_plans", "_cache", "_coded")

    def __init__(self, payload, rows: int, plans: dict[str, dict]) -> None:
        self._payload = payload
        self._rows = rows
        self._plans = plans
        self._cache: dict[str, np.ndarray] = {}
        self._coded: dict[str, CodedColumn] = {}

    def __getitem__(self, name: str) -> np.ndarray:
        array = self._cache.get(name)
        if array is None:
            array = _decode_column(self._payload, self._plans[name],
                                   self._rows)
            self._cache[name] = array
        return array

    def coded(self, name: str) -> Optional[CodedColumn]:
        """The column's codes + vocabulary, or ``None`` if not dict-encoded.

        The query engine's fast path: predicates evaluate against the
        (tiny) vocabulary and mask the integer codes, so filtered-out
        rows never pay the unicode gather ``__getitem__`` performs.
        Validation (including the code bounds check) is identical to the
        decoded path — corruption raises the same :class:`ValueError`
        either way.  ``None`` for raw-encoded columns (numeric columns,
        high-cardinality strings): callers fall back to the decoded
        array.
        """
        plan = self._plans[name]
        if plan["encoding"] != "dict":
            return None
        column = self._coded.get(name)
        if column is None:
            source, start = _inflated_section(self._payload, plan)
            column = _decode_dict(source, start, plan, self._rows)
            self._coded[name] = column
        return column

    def __contains__(self, name) -> bool:
        return name in self._plans

    def __iter__(self) -> Iterator[str]:
        return iter(self._plans)

    def __len__(self) -> int:
        return len(self._plans)


def open_columns(payload, kind: RowKind, *,
                 expected_rows: int) -> LazyColumns:
    """Open a columnar payload for lazy, zero-copy column access.

    ``payload`` is ``bytes`` or a read-only ``mmap`` of the ``.colseg``
    file.  The header and every column's structure (bounds, dtypes,
    dictionary layout, element counts of uncompressed sections) are
    validated eagerly; the returned :class:`LazyColumns` decodes a column
    only when it is first subscripted.  Any structural mismatch — bad
    magic, truncated buffers, a row count that disagrees with
    ``expected_rows``, columns that do not cover the schema — raises
    :class:`ValueError` here; the caller decides whether that means
    corruption.
    """
    if len(payload) < 4 or bytes(payload[:4]) != COLUMNAR_MAGIC:
        raise ValueError("not a columnar segment payload (bad magic)")
    if len(payload) < 8:
        raise ValueError("columnar payload truncated before its header")
    (header_len,) = _HEADER_LEN.unpack(payload[4:8])
    header_end = 8 + header_len
    if len(payload) < header_end:
        raise ValueError("columnar payload truncated inside its header")
    try:
        header = json.loads(bytes(payload[8:header_end]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValueError(f"columnar header is not valid JSON: {error}")
    if header.get("kind") != kind.name:
        raise ValueError(
            f"columnar payload holds kind {header.get('kind')!r}, "
            f"expected {kind.name!r}")
    rows = int(header.get("rows", -1))
    if rows != expected_rows:
        raise ValueError(
            f"columnar payload holds {rows} rows, manifest says "
            f"{expected_rows}")
    column_entries = header.get("columns", ())
    if not isinstance(column_entries, (list, tuple)):
        raise ValueError("columnar header's column list is malformed")
    parsed: dict[str, dict] = {}
    offset = header_end
    for entry in column_entries:
        plan = _parse_entry(entry, offset, len(payload), rows)
        parsed[plan["name"]] = plan
        offset += plan["nbytes"]
    for column in kind.columns:
        if column.name not in parsed:
            raise ValueError(
                f"columnar payload is missing column {column.name!r}")
    ordered = {column.name: parsed[column.name] for column in kind.columns}
    return LazyColumns(payload, rows, ordered)


def unpack_columns(payload: bytes, kind: RowKind, *,
                   expected_rows: int) -> dict[str, np.ndarray]:
    """Unpack a columnar payload into read-only column arrays, eagerly.

    The materialised counterpart of :func:`open_columns`: every column is
    decoded up front, so corruption anywhere in the payload surfaces here.
    Uncompressed columns are zero-copy views over ``payload`` (immutable
    bytes keep them read-only, matching the JSONL cache path's
    ``setflags(write=False)``).
    """
    lazy = open_columns(payload, kind, expected_rows=expected_rows)
    return {name: lazy[name] for name in lazy}
