"""Command-line interface for the gaugeNN reproduction.

Four subcommands mirror the paper's workflow:

* ``census``    — generate a synthetic snapshot and run the offline analysis
                  (Tables 2-3, Fig. 4, Sec. 4.5/6.1 statistics).
* ``benchmark`` — run the unique models of a snapshot across the device fleet
                  (Figs. 8-10), fanned out on the parallel sweep runner.
* ``sweep``     — full declarative device x backend x batch x thread sweep
                  with upfront compatibility pruning (Sec. 6.2/6.3 style);
                  ``--store PATH`` streams the results into a persistent,
                  queryable store instead of holding them in memory.
* ``store``     — ``query`` / ``report`` / ``info`` / ``compact`` /
                  ``export`` / ``diff`` over a persisted campaign:
                  vectorised filters and aggregations, the paper's figure
                  tables served from disk, per-kind segment format mix and
                  integrity, segment merging (optionally converting
                  row-oriented JSONL segments to the packed columnar
                  format), whole-store format export, and a vectorised
                  store-vs-store diff (aligned group keys, per-metric
                  deltas, new/removed entities).
* ``scenarios`` — scenario-driven energy costs on the Qualcomm boards
                  (Table 4); ``--store PATH`` persists the scenario rows.
* ``fleet``     — deterministic discrete-event fleet simulation: a virtual
                  population issuing scenario-driven inference traffic with
                  stateful thermal/battery devices, device-queue
                  back-pressure and cloud offload routing, streamed into a
                  results store and reported from it; ``--cloud-capacity``
                  resolves cross-user interference on shared regional cloud
                  capacity to a damped deterministic fixed point.
* ``campaign``  — out-of-core sharded campaigns: split a fleet population
                  into contiguous user-range shards, simulate each shard in
                  its own process into a shard-local store, then merge by
                  segment adoption + exact demand-grid addition into one
                  queryable store (bit-identical to an unsharded run for
                  any shard count).
* ``serve``     — asyncio HTTP query/report service over a store directory
                  with snapshot-isolated reads: every request is evaluated
                  against one pinned manifest generation while a campaign
                  keeps appending, with a (generation, segment, fragment)
                  result cache and a background refresh worker; responses
                  are bit-identical to ``store query`` / ``store report
                  --json`` at the same generation.
* ``compare``   — temporal comparison between the 2020 and 2021 snapshots
                  (Fig. 5, Sec. 4.6).
* ``obs``       — telemetry reports over a sidecar store written by
                  :mod:`repro.obs` (``--telemetry`` on ``fleet`` /
                  ``campaign run``): run timeline, per-stage breakdown,
                  shard-skew and metric tables; plus the drift gates —
                  ``obs snapshot`` writes a committed-baseline snapshot
                  (report tables + deterministic counters) and
                  ``obs drift`` classifies a run against it (exact class
                  vs wall-clock tolerance bands, exit code = severity),
                  with ``--bench`` ingesting BENCH_*.json history into a
                  ``bench_runs`` trajectory store.

Example::

    python -m repro.cli census --scale 0.05
    python -m repro.cli benchmark --scale 0.05 --devices A20 S21 --workers 4
    python -m repro.cli sweep --scale 0.02 --backends cpu xnnpack --batches 1 8
    python -m repro.cli sweep --scale 0.02 --store campaign.store
    python -m repro.cli store query campaign.store --where device_name=S21 \
        --group-by backend --agg latency_ms:mean,median
    python -m repro.cli store report campaign.store --table latency_ecdf
    python -m repro.cli fleet --users 200 --hours 12 --store fleet.store
    python -m repro.cli fleet --users 200 --cloud-capacity --diurnal \
        --store fleet.store
    python -m repro.cli store report fleet.store --table cloud_load
    python -m repro.cli store compact fleet.store
    python -m repro.cli campaign run --users 100000 --shards 8 \
        --store campaign.dir --compress
    python -m repro.cli store merge merged.store shard0.store shard1.store
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.android.appgen import AppGenerator, GeneratorConfig, ModelPool
from repro.android.playstore import PlayStore
from repro.core import reports
from repro.core.optimizations import analyze_optimizations
from repro.core.pipeline import GaugeNN
from repro.core.scenarios import STANDARD_SCENARIOS, run_scenario, summarize
from repro.core.temporal import compare_snapshots
from repro.core.uniqueness import analyze_finetuning, analyze_uniqueness
from repro.devices.device import DEVICE_FLEET, DEV_BOARDS, device_by_name
from repro.devices.scheduler import ThreadConfig
from repro.runtime import Backend, SweepRunner, SweepSpec
from repro.store import ReportServer, ResultStore, compact_store
from repro.store.schema import ROW_KINDS, TELEMETRY_KINDS

__all__ = ["main", "build_parser"]


def _build_store(scale: float, snapshots: Sequence[str]) -> PlayStore:
    pool = ModelPool()
    configs = {
        "2020": GeneratorConfig.snapshot_2020,
        "2021": GeneratorConfig.snapshot_2021,
    }
    generated = [
        AppGenerator(configs[label](scale=scale), pool).generate()
        for label in snapshots
    ]
    return PlayStore(generated)


def _analysis_for(scale: float, label: str):
    store = _build_store(scale, [label])
    return GaugeNN(store).analyze_snapshot(label)


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #
def cmd_census(args: argparse.Namespace) -> int:
    """Offline characterisation of one snapshot."""
    analysis = _analysis_for(args.scale, args.snapshot)
    row = reports.dataset_table(analysis)
    print(f"snapshot {row.label} ({row.date}) at scale {args.scale}")
    print(f"  total apps          : {row.total_apps}")
    print(f"  apps w/ frameworks  : {row.apps_with_frameworks} ({row.apps_with_frameworks_pct:.1f}%)")
    print(f"  apps w/ models      : {row.apps_with_models} ({row.apps_with_models_pct:.1f}%)")
    print(f"  total models        : {row.total_models}")
    print(f"  unique models       : {row.unique_models} ({row.unique_models_pct:.1f}%)")

    print("\nmodels per framework:")
    for framework, count in sorted(analysis.models_by_framework().items(),
                                   key=lambda item: -item[1]):
        print(f"  {framework:<8} {count}")

    print("\ntop tasks:")
    for task, count in sorted(analysis.models_by_task().items(), key=lambda i: -i[1])[:10]:
        print(f"  {task:<24} {count}")

    uniqueness = analyze_uniqueness(analysis.models)
    finetuning = analyze_finetuning(analysis.models)
    adoption = analyze_optimizations(analysis.models)
    print("\nuniqueness / fine-tuning:")
    print(f"  shared instances    : {100 * uniqueness.shared_fraction:.1f}%")
    print(f"  sharing >=20% wts   : {100 * finetuning.sharing_fraction:.1f}% of unique models")
    print("\noptimisation adoption:")
    print(f"  dequantize layers   : {100 * adoption.dequantize_fraction:.1f}%")
    print(f"  int8 weights        : {100 * adoption.int8_weight_fraction:.1f}%")
    print(f"  near-zero weights   : {100 * adoption.mean_near_zero_weight_fraction:.2f}%")
    print(f"  clustering / pruning: {adoption.clustered_models} / {adoption.pruned_models}")
    return 0


def cmd_benchmark(args: argparse.Namespace) -> int:
    """Fleet-wide latency/energy benchmark of the unique models."""
    analysis = _analysis_for(args.scale, args.snapshot)
    device_names = args.devices or [device.name for device in DEVICE_FLEET]
    backend = Backend(args.backend)

    print(f"benchmarking {analysis.unique_models} unique models on "
          f"{device_names} ({backend.value})")
    results = GaugeNN.benchmark_unique_models(
        analysis,
        [device_by_name(name) for name in device_names],
        backends=(backend,),
        num_inferences=args.inferences,
        max_workers=args.workers,
    )
    results_by_device = {name: [] for name in device_names}
    for result in results:
        results_by_device[result.device_name].append(result)

    print(f"\n{'device':<8}{'models':>7}{'mean ms':>10}{'median ms':>12}{'median mJ':>12}")
    for name, device_results in results_by_device.items():
        if not device_results:
            print(f"{name:<8}{0:>7}")
            continue
        latencies = [r.latency_ms for r in device_results]
        energies = [r.energy_mj for r in device_results]
        print(f"{name:<8}{len(device_results):>7}{np.mean(latencies):>10.1f}"
              f"{np.median(latencies):>12.1f}{np.median(energies):>12.1f}")
    return 0


def _parse_thread_config(label: str) -> Optional[ThreadConfig]:
    """Parse a Fig. 12-style thread label: ``auto``, ``4`` or ``4a2``.

    Used as an argparse ``type``, so a malformed label becomes a clean usage
    error instead of a traceback.
    """
    try:
        if label == "auto":
            return None
        if "a" in label:
            threads, affinity = label.split("a", 1)
            return ThreadConfig(threads=int(threads), affinity=int(affinity))
        return ThreadConfig(threads=int(label))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid thread config {label!r} (expected auto, 4 or 4a2)")


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return parsed


def cmd_sweep(args: argparse.Namespace) -> int:
    """Full declarative fleet sweep with compatibility pruning."""
    analysis = _analysis_for(args.scale, args.snapshot)
    graphs = GaugeNN.unique_graphs(analysis)
    device_names = args.devices or [device.name for device in DEVICE_FLEET]
    spec = SweepSpec(
        devices=tuple(device_by_name(name) for name in device_names),
        graphs=tuple(graphs),
        backends=tuple(Backend(b) for b in args.backends),
        batch_sizes=tuple(args.batches),
        thread_configs=tuple(args.threads),
        num_inferences=args.inferences,
        seed=args.seed,
    )
    runner = SweepRunner(spec, max_workers=args.workers,
                         chunk_size=args.chunk_size)
    jobs = runner.compatible_jobs()
    print(f"sweep: {spec.num_combinations} combinations, "
          f"{len(jobs)} runnable after pruning "
          f"({len(graphs)} models x {len(device_names)} devices x "
          f"{len(spec.backends)} backends x {len(spec.batch_sizes)} batches x "
          f"{len(spec.thread_configs)} thread configs)")

    if args.store is not None:
        # Streamed ingestion: nothing is collected in memory; the summary is
        # then served from the persisted rows through the query engine.
        store = ResultStore(args.store)
        GaugeNN.persist_snapshot(analysis, store)
        rows = runner.run_to_store(store)
        print(f"streamed {rows} results into {store.root} "
              f"({len(store.segments)} segments)")
        grouped = store.query("executions").group_by(
            "device_name", "backend", "batch_size", "thread_label").agg(
            models=("latency_ms", "count"),
            mean_ms=("latency_ms", "mean"),
            median_mj=("energy_mj", "median")).aggregate()
        print(f"\n{'device':<8}{'backend':<10}{'batch':>6}{'threads':>9}"
              f"{'models':>8}{'mean ms':>10}{'median mJ':>12}")
        for row in grouped:
            print(f"{row['device_name']:<8}{row['backend']:<10}"
                  f"{row['batch_size']:>6}{row['thread_label']:>9}"
                  f"{row['models']:>8}{row['mean_ms']:>10.1f}"
                  f"{row['median_mj']:>12.1f}")
        return 0

    results = runner.run()
    grouped = {}
    for result in results:
        key = (result.device_name, result.backend.value, result.batch_size,
               result.thread_label)
        grouped.setdefault(key, []).append(result)
    print(f"\n{'device':<8}{'backend':<10}{'batch':>6}{'threads':>9}"
          f"{'models':>8}{'mean ms':>10}{'median mJ':>12}")
    for (device, backend, batch, threads), group in sorted(grouped.items()):
        latencies = [r.latency_ms for r in group]
        energies = [r.energy_mj for r in group]
        print(f"{device:<8}{backend:<10}{batch:>6}{threads:>9}"
              f"{len(group):>8}{np.mean(latencies):>10.1f}"
              f"{np.median(energies):>12.1f}")
    return 0


# --------------------------------------------------------------------------- #
# store subcommands
# --------------------------------------------------------------------------- #
#: Comparison operators accepted in --where expressions, longest first so
#: ``<=`` is not parsed as ``<`` against ``=value``.
_WHERE_OPS = ("<=", ">=", "!=", "==", "<", ">", "=")


def _parse_where(expression: str) -> tuple[str, str, object]:
    """Parse a ``--where`` expression like ``device_name=S21`` or ``latency_ms<5``.

    Delegates to :func:`repro.store.query.parse_predicate` — the same
    grammar ``repro serve`` accepts in ``/v1/query`` parameters.
    """
    from repro.store.query import parse_predicate

    try:
        return parse_predicate(expression)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _parse_agg(expression: str) -> tuple[str, list[str]]:
    """Parse an ``--agg`` expression like ``latency_ms:mean,median``."""
    from repro.store.query import parse_agg_expr

    try:
        return parse_agg_expr(expression)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _format_cell(value: object) -> str:
    """One right-aligned query-output cell (None = no defined value)."""
    if value is None:
        return f"{'-':>18}"
    if isinstance(value, float):
        return f"{value:>18.4f}"
    return f"{str(value):>18}"


def cmd_store_query(args: argparse.Namespace) -> int:
    """Filter / group / aggregate over a persisted campaign."""
    store = ResultStore(args.path)
    query = store.query(args.kind)
    if args.workers < 0:
        print("error: --workers must be >= 0", file=sys.stderr)
        return 2
    if args.processes or args.workers != 1:
        query.parallel(args.workers or None, use_processes=args.processes)
    try:
        for column, op, value in args.where:
            query.where(column, op, value)
        if args.group_by:
            query.group_by(*args.group_by)
        for column, fns in args.agg:
            query.agg(**{f"{column}_{fn}": (column, fn) for fn in fns})
    except (KeyError, ValueError) as error:
        # Unknown column, bad operator or type-mismatched value: a usage
        # error, not a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.agg:
        output = query.aggregate()
        rows = output if isinstance(output, list) else [output]
        if not rows:
            print("no matching rows")
            return 0
        header = list(rows[0])
        print("  ".join(f"{name:>18}" for name in header))
        for row in rows:
            print("  ".join(_format_cell(row[name]) for name in header))
    else:
        shown = 0
        for row in query.rows():
            if args.limit is not None and shown >= args.limit:
                break
            print(row)
            shown += 1
        if shown == 0:
            print("no matching rows")
    stats = query.stats
    print(f"\nscanned {stats.segments_scanned}/{stats.segments_total} segments "
          f"({stats.segments_skipped} pruned by stats), "
          f"{stats.rows_matched}/{stats.rows_scanned} rows matched")
    return 0


def cmd_store_report(args: argparse.Namespace) -> int:
    """Serve the paper's figure tables from a persisted campaign."""
    if args.json:
        import json

        from repro.serve import report_payload

        payload = report_payload(ResultStore(args.path), args.table,
                                 device=args.device, min_apps=args.min_apps)
        print(json.dumps(payload, indent=2, sort_keys=False))
        return 0
    if args.table == "tail_latency":
        from repro.fleet import tail_latency_table

        store = ResultStore(args.path)
        if not store.num_rows("fleet_events"):
            print("store holds no fleet_events rows")
            return 0
        rows = tail_latency_table(store, group_by="device_name")
        print(f"{'device':<16}{'events':>9}{'p50 ms':>9}{'p90 ms':>9}"
              f"{'p99 ms':>9}{'p999 ms':>9}")
        for row in rows:
            print(f"{row['device_name']:<16}{row['events']:>9}"
                  f"{row['p50_ms']:>9.1f}{row['p90_ms']:>9.1f}"
                  f"{row['p99_ms']:>9.1f}{row['p999_ms']:>9.1f}")
        return 0
    if args.table == "drain":
        from repro.fleet import battery_drain_ecdf

        store = ResultStore(args.path)
        if not store.num_rows("fleet_events"):
            print("store holds no fleet_events rows")
            return 0
        ecdf = battery_drain_ecdf(store)
        median_mah, p90_mah = ecdf.quantiles((0.5, 0.9))
        print(f"users: {len(ecdf.values)}")
        print(f"median drain: {median_mah:.2f} mAh")
        print(f"p90 drain   : {p90_mah:.2f} mAh")
        return 0
    if args.table == "latency_flops":
        server = ReportServer(ResultStore(args.path))
        devices = ([args.device] if args.device
                   else server.summary()["devices"])
        for device in devices:
            points = server.latency_vs_flops(device)
            print(f"{device}: {len(points)} points")
            for latency_ms, flops in points[:10]:
                print(f"  {latency_ms:>10.2f} ms  {flops:>14.0f} FLOPs")
            if len(points) > 10:
                print(f"  ... {len(points) - 10} more")
        return 0
    if args.table == "cloud_load":
        from repro.cloud import load_report

        store = ResultStore(args.path)
        rows = load_report(store)
        if not rows:
            print("store holds no fleet_load rows")
            return 0
        print(f"{'region':<12}{'API':<28}{'requests':>10}{'peak rps':>10}"
              f"{'MB':>8}{'bins':>6}")
        for row in rows:
            print(f"{row['region']:<12}{row['cloud_api']:<28}"
                  f"{row['requests']:>10}{row['peak_rps']:>10.2f}"
                  f"{row['payload_bytes'] / 1e6:>8.1f}{row['active_bins']:>6}")
        return 0
    server = ReportServer(ResultStore(args.path))
    if args.table == "summary":
        summary = server.summary()
        print(f"segments: {summary['segments']}")
        for kind, count in summary["rows"].items():
            print(f"  {kind:<12} {count} rows")
        print(f"devices : {', '.join(summary['devices']) or '-'}")
        print(f"backends: {', '.join(summary['backends']) or '-'}")
    elif args.table == "latency_ecdf":
        print(f"{'device':<8}{'models':>8}{'median ms':>12}{'p90 ms':>10}{'p99 ms':>10}")
        for device, ecdf in server.latency_ecdf_by_device().items():
            print(f"{device:<8}{len(ecdf.values):>8}{ecdf.median:>12.1f}"
                  f"{ecdf.quantile(0.9):>10.1f}{ecdf.quantile(0.99):>10.1f}")
    elif args.table == "energy":
        print(f"{'device':<8}{'median mJ':>12}{'mean mJ':>10}{'median W':>10}"
              f"{'MFLOP/sW':>10}")
        for device, row in server.energy_distributions().items():
            print(f"{device:<8}{row['energy_median_mj']:>12.1f}"
                  f"{row['energy_mean_mj']:>10.1f}{row['power_median_w']:>10.2f}"
                  f"{row['efficiency_median_mflops_per_sw']:>10.1f}")
    else:  # cloud
        print(f"{'API':<28}{'provider':<12}{'apps':>6}")
        for api, entry in server.cloud_api_usage().items():
            print(f"{api:<28}{entry['provider']:<12}{entry['apps']:>6}")
    return 0


def _print_summary_table(summary: dict) -> None:
    print(f"\n{'kind':<18}{'segments':>9}{'rows':>10}{'on-disk':>12}"
          f"{'sidecars':>12}  formats")
    for kind_name, entry in summary.items():
        mix = ", ".join(f"{count} {fmt}" for fmt, count
                        in sorted(entry["formats"].items()))
        print(f"{kind_name:<18}{entry['segments']:>9}{entry['rows']:>10}"
              f"{entry['bytes'] / 1e6:>10.2f}MB"
              f"{entry['sidecar_bytes'] / 1e6:>10.2f}MB  {mix}")


def cmd_store_info(args: argparse.Namespace) -> int:
    """Inspect a persisted campaign's layout, format mix and integrity."""
    store = ResultStore(args.path)
    if args.json:
        import json

        payload = store.info_payload()
        if args.verify:
            payload["verified_segments"] = store.verify_integrity()
        print(json.dumps(payload, indent=2, sort_keys=False))
        return 0
    print(store)
    for meta in store.segments:
        print(f"  {meta.name:<22} {meta.kind:<12} {meta.format:<9} "
              f"{meta.rows:>7} rows  sha256 {meta.sha256[:12]}")
    summary = store.format_summary()
    # Telemetry kinds report under their own heading: a sidecar store is
    # all telemetry, a result store should show none.
    results = {kind: entry for kind, entry in summary.items()
               if kind not in TELEMETRY_KINDS}
    telemetry = {kind: entry for kind, entry in summary.items()
                 if kind in TELEMETRY_KINDS}
    if results:
        _print_summary_table(results)
    if telemetry:
        print("\ntelemetry:")
        _print_summary_table(telemetry)
    if args.verify:
        verified = store.verify_integrity()
        print(f"verified {verified} segment checksums: OK")
    return 0


def cmd_store_export(args: argparse.Namespace) -> int:
    """Rewrite a store into a fresh one in the requested segment format."""
    from repro.store import export_store

    try:
        stats = export_store(args.path, args.dest,
                             output_format=args.format,
                             rows_per_segment=args.rows_per_segment,
                             kinds=args.kinds or None,
                             compress=args.compress)
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"exported {stats.rows} rows ({', '.join(stats.kinds) or 'no kinds'}) "
          f"into {args.dest} as {stats.segments} {stats.output_format} "
          f"segments")
    delta = stats.source_bytes - stats.output_bytes
    print(f"  {stats.source_bytes / 1e6:.2f} MB -> "
          f"{stats.output_bytes / 1e6:.2f} MB "
          f"({'reclaimed' if delta >= 0 else 'grew by'} "
          f"{abs(delta) / 1e6:.2f} MB)")
    if args.verify:
        verified = ResultStore(args.dest).verify_integrity()
        print(f"verified {verified} segment checksums: OK")
    return 0


def cmd_store_compact(args: argparse.Namespace) -> int:
    """Merge a store's small committed segments into few large ones."""
    store = ResultStore(args.path)
    stats = compact_store(store, rows_per_segment=args.rows_per_segment,
                          kinds=args.kinds or None,
                          output_format=args.format,
                          compress=args.compress)
    if not stats.kinds_compacted:
        print(f"nothing to compact: {stats.segments_before} segments already "
              f"at target layout")
        return 0
    print(f"compacted {', '.join(stats.kinds_compacted)}: "
          f"{stats.segments_before} -> {stats.segments_after} segments "
          f"({stats.rows_rewritten} rows rewritten, "
          f"{stats.files_removed} files removed, "
          f"{'reclaimed' if stats.bytes_reclaimed >= 0 else 'grew by'} "
          f"{abs(stats.bytes_reclaimed) / 1e6:.2f} MB)")
    if args.verify:
        verified = store.verify_integrity()
        print(f"verified {verified} segment checksums: OK")
    return 0


def cmd_store_merge(args: argparse.Namespace) -> int:
    """Adopt source stores' segments into a destination, one commit."""
    from repro.store import merge_stores

    try:
        stats = merge_stores(ResultStore(args.dest), args.sources,
                             kinds=args.kinds or None, verify=args.verify)
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"merged {stats.sources} stores into {args.dest}: "
          f"{stats.segments_adopted} segments adopted "
          f"({stats.rows_adopted} rows; {stats.files_linked} hard-linked, "
          f"{stats.files_copied} copied; "
          f"kinds: {', '.join(stats.kinds) or 'none'})")
    return 0


def _with_telemetry(args: argparse.Namespace, run_id: str, body) -> int:
    """Run ``body`` with telemetry enabled when ``--telemetry PATH`` was given.

    On success the collected snapshot lands in the sidecar store at the
    given path (tagged ``run_id``); telemetry is always disabled again
    afterwards so one command's spans never leak into the next.
    """
    telemetry = getattr(args, "telemetry", None)
    if telemetry is None:
        return body()
    from repro.obs.sink import write_telemetry

    obs.enable()
    try:
        code = body()
        rows = write_telemetry(telemetry, run_id=run_id)
        print(f"telemetry: {rows} rows into {telemetry}")
        return code
    finally:
        obs.disable()


def cmd_campaign_run(args: argparse.Namespace) -> int:
    return _with_telemetry(args, "campaign", lambda: _campaign_run_body(args))


def _campaign_run_body(args: argparse.Namespace) -> int:
    """Sharded out-of-core campaign: simulate, adopt, add, report."""
    from repro.campaign import campaign_spec, run_campaign

    try:
        spec = campaign_spec(args.workload, args.users, seed=args.seed,
                             horizon_s=args.hours * 3600.0)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"campaign: {spec.num_users} users over {args.hours:g} h, "
          f"{args.shards} shards ({args.workload} workload"
          f"{', compressed' if args.compress else ''})")
    try:
        result = run_campaign(
            spec, args.store, shards=args.shards,
            bin_seconds=args.bin_minutes * 60.0,
            rows_per_segment=args.rows_per_segment,
            compress=args.compress, max_parallel=args.max_parallel)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for shard in result.shard_results:
        print(f"  shard {shard.shard_index:>4}: {shard.users} users, "
              f"{shard.events} events ({shard.offloaded} offloaded) "
              f"in {shard.seconds:.1f}s, {shard.segments} segments")
    merge = result.merge
    print(f"simulated {result.events} events in "
          f"{result.simulate_seconds:.1f}s; merged "
          f"{merge.segments_adopted} segments "
          f"({merge.files_linked} linked, {merge.files_copied} copied) "
          f"in {result.merge_seconds:.1f}s")
    print(f"merged store: {result.store_root}")
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    """Table 4 scenario energy on the development boards."""
    analysis = _analysis_for(args.scale, args.snapshot)
    pairs = GaugeNN.graphs_with_tasks(analysis)
    rows_written = 0

    def run_all(writer=None) -> None:
        nonlocal rows_written
        print(f"{'device':<8}{'scenario':<12}{'models':>7}{'avg mAh':>12}{'max mAh':>12}")
        for device in DEV_BOARDS:
            for scenario in STANDARD_SCENARIOS:
                results = run_scenario(scenario, device, pairs)
                if writer is not None:
                    rows_written += writer.append_many(results)
                summary = summarize(results)
                if summary is None:
                    print(f"{device.name:<8}{scenario.name:<12}{'-':>7}")
                    continue
                print(f"{device.name:<8}{scenario.name:<12}{summary.model_count:>7}"
                      f"{summary.mean_mah:>12.3f}{summary.max_mah:>12.3f}")

    if args.store is None:
        run_all()
        return 0
    # Context-managed so rows ingested before a mid-loop failure still seal.
    with ResultStore(args.store).writer() as writer:
        run_all(writer)
    print(f"\npersisted {rows_written} scenario rows into {args.store} "
          f"({writer.segments_sealed} segments)")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    return _with_telemetry(args, "fleet", lambda: _fleet_body(args))


def _fleet_body(args: argparse.Namespace) -> int:
    """Deterministic fleet traffic simulation, reported per device/scenario."""
    from repro.devices.battery import RechargeSchedule
    from repro.fleet import (DiurnalProfile, FleetSimulator, FleetSpec,
                             QueuePolicy, RoutingPolicy, battery_drain_ecdf,
                             offload_summary, tail_latency_table,
                             zoo_population)

    analysis = _analysis_for(args.scale, args.snapshot)
    pairs = GaugeNN.graphs_with_tasks(analysis)
    policy = RoutingPolicy(
        battery_saver_threshold=args.battery_threshold,
        queue=QueuePolicy(max_wait_ms=args.queue_wait_ms,
                          overflow=args.queue_overflow),
    )
    spec_kwargs = dict(
        num_users=args.users,
        horizon_s=args.hours * 3600.0,
        policy=policy,
        seed=args.seed,
        diurnal=DiurnalProfile.default() if args.diurnal else None,
        recharge=RechargeSchedule() if args.recharge else None,
    )
    try:
        spec = FleetSpec(graphs_with_tasks=pairs, **spec_kwargs)
    except ValueError:
        # Small snapshots may hold no model for the Table 4 scenario tasks;
        # fall back to the zoo reference population so the fleet always runs.
        print("snapshot has no scenario-compatible models; using the zoo "
              "reference population")
        spec = FleetSpec(graphs_with_tasks=zoo_population(), **spec_kwargs)

    print(f"fleet: {spec.num_users} users over {args.hours:g} h "
          f"({len(spec.eligible_scenarios)} scenarios, "
          f"{len(spec.devices)} device models)")

    if args.cloud_capacity:
        return _run_fleet_cloud(args, spec)

    simulator = FleetSimulator(spec, max_workers=args.workers,
                               chunk_size=args.chunk_size,
                               use_processes=args.processes)
    if args.fleet_store is None:
        # In-memory path: aggregate the trace stream directly.
        traces = simulator.collect()
        events = sum(trace.num_events for trace in traces)
        offloaded = sum(trace.num_offloaded for trace in traces)
        print(f"simulated {events} events ({offloaded} offloaded)")
        per_device: dict[str, list[np.ndarray]] = {}
        drains = []
        for trace in traces:
            if trace.num_events:
                on_device = ~trace.offloaded
                if on_device.any():
                    per_device.setdefault(trace.user.device.name, []).append(
                        trace.latency_ms[on_device])
                drains.append(float(trace.discharge_mah.sum()))
        print(f"\n{'device':<8}{'events':>9}{'p50 ms':>10}{'p90 ms':>10}{'p99 ms':>10}")
        for device, chunks in sorted(per_device.items()):
            values = np.concatenate(chunks)
            p50, p90, p99 = np.quantile(values, [0.5, 0.9, 0.99])
            print(f"{device:<8}{values.size:>9}{p50:>10.1f}{p90:>10.1f}{p99:>10.1f}")
        if drains:
            print(f"\nbattery drain per user: median "
                  f"{np.median(drains):.1f} mAh, p90 "
                  f"{np.quantile(drains, 0.9):.1f} mAh")
        return 0

    # Store path: stream the events in, then serve every report from disk.
    store = ResultStore(args.fleet_store)
    rows = simulator.run_to_store(store, rows_per_segment=args.rows_per_segment)
    print(f"streamed {rows} events into {store.root} "
          f"({len(store.segments)} segments)")
    if rows == 0:
        print("no events to report (population idle over this horizon)")
        return 0
    print(f"\n{'device':<8}{'events':>9}{'p50 ms':>10}{'p90 ms':>10}{'p99 ms':>10}")
    for row in tail_latency_table(store, group_by="device_name"):
        print(f"{row['device_name']:<8}{row['events']:>9}{row['p50_ms']:>10.1f}"
              f"{row['p90_ms']:>10.1f}{row['p99_ms']:>10.1f}")
    median_mah, p90_mah = battery_drain_ecdf(store).quantiles((0.5, 0.9))
    print(f"\nbattery drain per user: median {median_mah:.1f} mAh, "
          f"p90 {p90_mah:.1f} mAh")
    summary = offload_summary(store)
    print(f"cloud offload: {summary['offloaded']}/{summary['events']} requests "
          f"({100 * summary['offload_fraction']:.1f}%), "
          f"{summary['uplink_bytes'] / 1e6:.1f} MB uplink")
    for api, entry in summary["by_api"].items():
        print(f"  {api:<28} {entry['requests']:>8} req "
              f"{entry['bytes'] / 1e6:>10.1f} MB")
    return 0


def _run_fleet_cloud(args: argparse.Namespace, spec) -> int:
    """Fleet simulation over shared regional cloud capacity (two-pass)."""
    from repro.cloud import (CapacityModel, InterferenceConfig,
                             InterferenceSimulator, load_report)
    from repro.fleet import queue_summary, tail_latency_table

    capacity = CapacityModel()
    config = InterferenceConfig(bin_seconds=args.cloud_bin_minutes * 60.0,
                                damping=args.cloud_damping,
                                max_passes=args.cloud_max_passes)
    simulator = InterferenceSimulator(spec, capacity, config=config,
                                      max_workers=args.workers,
                                      chunk_size=args.chunk_size,
                                      use_processes=args.processes)
    print(f"cloud capacity: {len(capacity.regions)} regions, "
          f"{config.bin_seconds / 60:g} min bins, damping {config.damping:g}")

    if args.fleet_store is None:
        result = simulator.run()
        status = "converged" if result.converged else "hit the pass cap"
        print(f"fixed point {status} after {result.passes} passes "
              f"(max |delta| per pass: "
              f"{', '.join(f'{d:.1f}ms' for d in result.deltas_ms)})")
        print(f"offloaded requests: {result.profile.total_requests} "
              f"(peak bin {result.profile.peak_rps():.2f} req/s, "
              f"peak service {result.peak_service_ms:.0f} ms vs "
              f"{spec.policy.cloud.service_ms:g} ms unloaded)")
        counts: dict[str, int] = {}
        for trace in result.traces:
            for target, value in trace.route_counts().items():
                counts[target] = counts.get(target, 0) + value
        arrived = sum(counts.values())
        print("queue conservation: arrived "
              f"{arrived} = " + " + ".join(f"{counts.get(t, 0)} {t}"
                                           for t in ("device", "cloud",
                                                     "shed", "queued")))
        return 0

    store = ResultStore(args.fleet_store)
    rows, result = simulator.run_to_store(
        store, rows_per_segment=args.rows_per_segment)
    status = "converged" if result.converged else "hit the pass cap"
    print(f"fixed point {status} after {result.passes} passes; "
          f"streamed {rows} rows into {store.root} "
          f"({len(store.segments)} segments)")
    # The simulator's streamed arrival count is the external side of the
    # audit — a dropped or duplicated store row flips this to [VIOLATED].
    summary = queue_summary(store, expected_arrived=result.arrived)
    by_target = summary["by_target"]
    print("queue conservation: arrived "
          f"{summary['arrived']} = " + " + ".join(
              f"{by_target[t]} {t}" for t in by_target)
          + ("  [OK]" if summary["conserved"] else "  [VIOLATED]"))
    print(f"\n{'region':<12}{'API':<28}{'requests':>10}{'peak rps':>10}"
          f"{'MB':>8}")
    for row in load_report(store):
        print(f"{row['region']:<12}{row['cloud_api']:<28}"
              f"{row['requests']:>10}{row['peak_rps']:>10.2f}"
              f"{row['payload_bytes'] / 1e6:>8.1f}")
    cloud_rows = tail_latency_table(store, group_by="region", target="cloud")
    if cloud_rows:
        print(f"\n{'region':<12}{'requests':>10}{'p50 ms':>10}{'p99 ms':>10}")
        for row in cloud_rows:
            print(f"{row['region']:<12}{row['events']:>10}"
                  f"{row['p50_ms']:>10.1f}{row['p99_ms']:>10.1f}")
    return 0


def cmd_obs_report(args: argparse.Namespace) -> int:
    """Render one telemetry table from a sidecar store."""
    from repro.obs.report import (available_runs, metrics_table, run_timeline,
                                  shard_skew, stage_breakdown)
    from repro.store import StoreCorruptionError

    # Preflight: distinguish "that store has no telemetry at all" and
    # "your --run matched nothing" from legitimately empty tables, so the
    # messages name what *is* there instead of tracebacks or blank output.
    try:
        store = ResultStore(args.store)
        runs = available_runs(store)
    except StoreCorruptionError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not runs:
        kinds = ", ".join(store.kinds()) or "none"
        print(f"no matching telemetry in {args.store} "
              f"(row kinds present: {kinds})")
        return 1
    if args.run is not None and args.run not in runs:
        print(f"no matching telemetry for run {args.run!r} "
              f"(available runs: {', '.join(runs)})")
        return 1

    if args.table == "run_timeline":
        rows = run_timeline(store, run_id=args.run)
        if not rows:
            print("no spans recorded")
            return 1
        print(f"{'offset_s':>10} {'duration_s':>11} {'shard':>6} "
              f"{'items':>8}  span")
        for row in rows:
            indent = "  " * row["depth"]
            shard = str(row["shard"]) if row["shard"] >= 0 else "-"
            detail = f"  [{row['detail']}]" if row["detail"] else ""
            print(f"{row['offset_s']:>10.4f} {row['duration_s']:>11.4f} "
                  f"{shard:>6} {row['items']:>8}  "
                  f"{indent}{row['name']}{detail}")
    elif args.table == "stages":
        rows = stage_breakdown(store, run_id=args.run)
        if not rows:
            print("no spans recorded")
            return 1
        print(f"{'stage':<26}{'spans':>7}{'total s':>10}{'mean s':>10}"
              f"{'max s':>10}{'items':>10}")
        for row in rows:
            print(f"{row['name']:<26}{row['spans']:>7}{row['total_s']:>10.4f}"
                  f"{row['mean_s']:>10.4f}{row['max_s']:>10.4f}"
                  f"{row['items']:>10}")
    elif args.table == "shard_skew":
        rows = shard_skew(store, run_id=args.run)
        if not rows:
            print("no shard-scoped spans recorded")
            return 1
        print(f"{'shard':>6}{'spans':>7}{'seconds':>10}{'items':>10}"
              f"{'skew':>8}")
        for row in rows:
            print(f"{row['shard']:>6}{row['spans']:>7}"
                  f"{row['seconds']:>10.4f}{row['items']:>10}"
                  f"{row['skew']:>8.2f}")
    else:
        rows = metrics_table(store, run_id=args.run,
                             metric_class=args.metric_class)
        if not rows:
            print("no metrics recorded")
            return 1
        print(f"{'metric':<28}{'class':<15}{'value':>12} {'total':>14} "
              f"{'min':>12} {'max':>12}")
        for row in rows:
            print(f"{row['metric']:<28}{row['metric_class']:<15}"
                  f"{row['value_i']:>12} {row['total']:>14.4f} "
                  f"{row['min']:>12.4f} {row['max']:>12.4f}")
    return 0


def cmd_store_diff(args: argparse.Namespace) -> int:
    """Vectorised store-vs-store diff: aligned groups, per-metric deltas."""
    from repro.store import StoreCorruptionError, diff_stores
    from repro.store.store import MANIFEST_NAME

    for path in (args.store_a, args.store_b):
        if not (Path(path) / MANIFEST_NAME).exists():
            print(f"error: {path} is not a result store (no {MANIFEST_NAME})",
                  file=sys.stderr)
            return 2
    try:
        diff = diff_stores(ResultStore(args.store_a), ResultStore(args.store_b),
                           kinds=args.kind or None, where=args.where)
    except (KeyError, ValueError, StoreCorruptionError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not diff.kinds:
        print("no diffable row kinds in either store")
        return 0
    for kind_name, entry in diff.summary().items():
        print(f"{kind_name}: {entry['rows_a']} vs {entry['rows_b']} rows, "
              f"{entry['matched']} groups matched "
              f"({entry['changed']} changed, {entry['added']} added, "
              f"{entry['removed']} removed)")
        kind_diff = diff.kinds[kind_name]
        for row in kind_diff.changed_rows(limit=args.limit):
            key = "/".join(str(row[name]) for name in kind_diff.keys)
            deltas = ", ".join(
                f"{metric} {row[metric]['a']:g} -> {row[metric]['b']:g}"
                for metric in kind_diff.metrics
                if row[metric]["a"] != row[metric]["b"])
            print(f"  ~ {key}: {deltas}")
        for label, rows in (("+", kind_diff.added_rows(limit=args.limit)),
                            ("-", kind_diff.removed_rows(limit=args.limit))):
            for row in rows:
                key = "/".join(str(row[name]) for name in kind_diff.keys)
                print(f"  {label} {key}")
    for kind_name in diff.skipped:
        print(f"{kind_name}: skipped (no diff spec)")
    if diff.identical:
        print("stores are identical under the diff specs")
        return 0
    return 1


def cmd_obs_snapshot(args: argparse.Namespace) -> int:
    """Write a drift-baseline snapshot of a campaign/telemetry store."""
    from repro.obs.snapshot import build_snapshot, write_snapshot

    if args.store is None and args.telemetry is None:
        print("error: need --store and/or --telemetry to snapshot",
              file=sys.stderr)
        return 2
    meta = {}
    for item in args.meta:
        key, _, value = item.partition("=")
        meta[key] = value
    if args.store is not None:
        meta.setdefault("store", str(args.store))
    if args.telemetry is not None:
        meta.setdefault("telemetry", str(args.telemetry))
    if args.run is not None:
        meta.setdefault("run", args.run)
    snapshot = build_snapshot(store=args.store, telemetry=args.telemetry,
                              run_id=args.run, meta=meta)
    write_snapshot(args.out, snapshot)
    tables = snapshot["tables"]
    print(f"wrote {args.out}: {len(tables)} report tables "
          f"({sum(len(t['rows']) for t in tables.values())} rows), "
          f"{len(snapshot['counters'])} deterministic counters, "
          f"{len(snapshot['wallclock'])} wall-clock metrics")
    return 0


def _drift_exit(report, fail_on: str) -> int:
    """Exit code of a drift run: the max severity, gated by --fail-on."""
    from repro.obs.drift import BREACH, EXACT, TOLERATED

    threshold = {"any": TOLERATED, "breach": BREACH, "exact": EXACT}[fail_on]
    return report.max_severity if report.max_severity >= threshold else 0


def cmd_obs_drift(args: argparse.Namespace) -> int:
    """Classify drift against a baseline (or across BENCH_*.json history)."""
    import json as json_module

    from repro.obs.drift import (DriftPolicy, bench_drift, diff_snapshots,
                                 ingest_bench_files)
    from repro.obs.snapshot import build_snapshot, load_snapshot

    policy = DriftPolicy(rel_tol=args.rel_tol)
    if args.bench is not None:
        bench_files = [Path(p) for p in args.bench] or \
            sorted(Path.cwd().glob("BENCH_*.json"))
        store = ResultStore(args.bench_store)
        stats = ingest_bench_files(store, bench_files)
        print(f"ingested {stats['ingested']} payloads "
              f"({stats['rows']} bench_runs rows, "
              f"{stats['skipped']} skipped as already ingested or unstamped)")
        report = bench_drift(store, policy)
    else:
        if args.baseline is None:
            print("error: --baseline is required (or use --bench)",
                  file=sys.stderr)
            return 2
        try:
            baseline = load_snapshot(args.baseline)
            if args.snapshot is not None:
                current = load_snapshot(args.snapshot)
            elif args.store is not None or args.telemetry is not None:
                current = build_snapshot(store=args.store,
                                         telemetry=args.telemetry,
                                         run_id=args.run,
                                         meta=baseline.get("meta", {}))
            else:
                print("error: need --snapshot or --store/--telemetry for "
                      "the current side", file=sys.stderr)
                return 2
            report = diff_snapshots(baseline, current, policy)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    for note in report.notes:
        print(f"note: {note}")
    if report.clean:
        print("no drift: everything compares clean")
    else:
        for finding in report.findings:
            key = f" [{finding['key']}]" if "key" in finding else ""
            values = ""
            if "baseline" in finding:
                values = f": {finding['baseline']} -> {finding['current']}"
            print(f"{finding['severity'].upper():<10} {finding['source']} "
                  f"{finding['metric']}{key}{values}")
        if report.truncated:
            print(f"... {report.truncated} more findings truncated")
        counts = ", ".join(f"{count} {name}" for name, count
                           in report.severity_counts.items() if count)
        print(f"drift: {counts}")
    if args.report is not None:
        payload = report.to_json()
        payload["policy"] = {"rel_tol": policy.rel_tol,
                             "fail_on": args.fail_on}
        Path(args.report).write_text(
            json_module.dumps(payload, indent=2) + "\n")
        print(f"report written to {args.report}")
    return _drift_exit(report, args.fail_on)


def cmd_compare(args: argparse.Namespace) -> int:
    """Temporal comparison between the two snapshots."""
    store = _build_store(args.scale, ["2020", "2021"])
    gauge = GaugeNN(store)
    earlier = gauge.analyze_snapshot("2020")
    later = gauge.analyze_snapshot("2021")
    comparison = compare_snapshots(earlier, later)
    print(f"models: {comparison.earlier_total_models} -> {comparison.later_total_models} "
          f"({comparison.model_growth:.2f}x)")
    print(f"cloud-ML apps: {comparison.earlier_cloud_apps} -> {comparison.later_cloud_apps} "
          f"({comparison.cloud_growth:.2f}x)")
    print("\ntop category changes (added/removed):")
    for churn in comparison.churn_sorted_by_net_change()[: args.top]:
        print(f"  {churn.category:<22} +{churn.added:<4} -{churn.removed:<4} "
              f"net {churn.net_change:+d}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve queries and report tables over a (possibly live) store."""
    from repro.serve import ServeApp

    app = ServeApp(args.path, host=args.host, port=args.port,
                   refresh_s=args.refresh, cache=not args.no_cache,
                   compact_segments=args.compact_segments, mmap=args.mmap,
                   handler_threads=args.threads,
                   scan_workers=args.scan_workers)
    app.run()
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="gaugeNN reproduction: characterise and benchmark mobile DNNs",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--scale", type=float, default=0.05,
                         help="fraction of the paper's dataset size to generate")
        sub.add_argument("--snapshot", choices=("2020", "2021"), default="2021",
                         help="which snapshot to analyse")

    census = subparsers.add_parser("census", help="offline DNN characterisation")
    add_common(census)
    census.set_defaults(func=cmd_census)

    bench = subparsers.add_parser("benchmark", help="fleet latency/energy benchmark")
    add_common(bench)
    bench.add_argument("--devices", nargs="*", default=None,
                       choices=[device.name for device in DEVICE_FLEET],
                       help="devices to benchmark (default: whole fleet)")
    bench.add_argument("--backend", default="cpu",
                       choices=[backend.value for backend in Backend])
    bench.add_argument("--inferences", type=int, default=3,
                       help="measured inferences per model")
    bench.add_argument("--workers", type=_positive_int, default=None,
                       help="sweep worker threads (default: one per job, capped "
                            "at the CPU count)")
    bench.set_defaults(func=cmd_benchmark)

    sweep = subparsers.add_parser(
        "sweep", help="declarative device x backend x batch x thread sweep")
    add_common(sweep)
    sweep.add_argument("--devices", nargs="*", default=None,
                       choices=[device.name for device in DEVICE_FLEET],
                       help="devices to sweep (default: whole fleet)")
    sweep.add_argument("--backends", nargs="*",
                       default=[Backend.CPU.value],
                       choices=[backend.value for backend in Backend])
    sweep.add_argument("--batches", nargs="*", type=_positive_int, default=[1])
    sweep.add_argument("--threads", nargs="*", type=_parse_thread_config,
                       default=[None],
                       help="thread configs: auto, a count (4) or count+affinity (4a2)")
    sweep.add_argument("--inferences", type=_positive_int, default=3)
    sweep.add_argument("--seed", type=int, default=0,
                       help="base seed for the deterministic per-job seeds")
    sweep.add_argument("--workers", type=_positive_int, default=None)
    sweep.add_argument("--chunk-size", type=_positive_int, default=None,
                       help="batch jobs into per-worker slices of this size")
    sweep.add_argument("--store", default=None, metavar="PATH",
                       help="stream results into a persistent store at PATH "
                            "(also ingests the snapshot's app/model rows)")
    sweep.set_defaults(func=cmd_sweep)

    store = subparsers.add_parser(
        "store", help="query and report over a persisted results store")
    store_sub = store.add_subparsers(dest="store_command", required=True)

    query = store_sub.add_parser("query", help="filter/group/aggregate rows")
    query.add_argument("path", help="store directory")
    query.add_argument("--kind", default="executions",
                       choices=sorted(ROW_KINDS))
    query.add_argument("--where", action="append", default=[],
                       type=_parse_where, metavar="COL<OP>VALUE",
                       help="predicate, e.g. device_name=S21, latency_ms<5 "
                            "or 'backend in tflite|ncnn' "
                            "(repeatable; all must hold)")
    query.add_argument("--group-by", nargs="*", default=[],
                       help="columns to group aggregations by")
    query.add_argument("--agg", action="append", default=[],
                       type=_parse_agg, metavar="COL:FN[,FN...]",
                       help="aggregations, e.g. latency_ms:mean,median "
                            "(repeatable)")
    query.add_argument("--limit", type=_positive_int, default=20,
                       help="max rows printed for non-aggregate queries")
    query.add_argument("--workers", type=int, default=1, metavar="N",
                       help="parallel segment-scan workers (1 = sequential, "
                            "0 = one per CPU; results are bit-identical "
                            "for any worker count)")
    query.add_argument("--processes", action="store_true",
                       help="scan segments on a process pool instead of "
                            "threads")
    query.set_defaults(func=cmd_store_query)

    report = store_sub.add_parser(
        "report", help="serve paper figure tables from the store")
    report.add_argument("path", help="store directory")
    report.add_argument("--table", default="summary",
                        choices=("summary", "latency_ecdf", "energy", "cloud",
                                 "cloud_load", "tail_latency", "drain",
                                 "latency_flops"))
    report.add_argument("--json", action="store_true",
                        help="emit the table as JSON (the exact payload "
                             "repro serve returns at the same generation)")
    report.add_argument("--device", default=None,
                        help="restrict latency_flops to one device")
    report.add_argument("--min-apps", type=int, default=0,
                        help="drop cloud APIs used by fewer apps")
    report.set_defaults(func=cmd_store_report)

    info = store_sub.add_parser("info", help="inspect segments and integrity")
    info.add_argument("path", help="store directory")
    info.add_argument("--verify", action="store_true",
                      help="verify every segment checksum")
    info.add_argument("--json", action="store_true",
                      help="emit a machine-readable summary (the /v1/stats "
                           "store payload)")
    info.set_defaults(func=cmd_store_info)

    compact = store_sub.add_parser(
        "compact", help="merge small committed segments into few large ones")
    compact.add_argument("path", help="store directory")
    compact.add_argument("--rows-per-segment", type=_positive_int, default=None,
                         help="re-chunk rows at this size (default: one "
                              "segment per kind)")
    compact.add_argument("--kinds", nargs="*", default=[],
                         choices=sorted(ROW_KINDS),
                         help="row kinds to compact (default: all)")
    compact.add_argument("--format", choices=("jsonl", "columnar"),
                         default=None,
                         help="seal the merged segments in this format "
                              "(default: converge each kind to columnar if "
                              "any of its segments already is)")
    compact.add_argument("--compress", action="store_true",
                         help="zlib-compress the rewritten columnar "
                              "segments' column sections")
    compact.add_argument("--verify", action="store_true",
                         help="verify every segment checksum afterwards")
    compact.set_defaults(func=cmd_store_compact)

    export = store_sub.add_parser(
        "export", help="rewrite a store into a fresh one in another format")
    export.add_argument("path", help="source store directory")
    export.add_argument("dest", help="destination store directory (fresh)")
    export.add_argument("--format", choices=("jsonl", "columnar"),
                        default="jsonl",
                        help="destination segment format (default: jsonl — "
                             "the grep-able interchange format)")
    export.add_argument("--rows-per-segment", type=_positive_int, default=None,
                        help="re-chunk rows at this size (default: mirror "
                             "the source's segment boundaries)")
    export.add_argument("--kinds", nargs="*", default=[],
                        choices=sorted(ROW_KINDS),
                        help="row kinds to export (default: all)")
    export.add_argument("--compress", action="store_true",
                        help="zlib-compress columnar output's column "
                             "sections")
    export.add_argument("--verify", action="store_true",
                        help="verify every destination checksum afterwards")
    export.set_defaults(func=cmd_store_export)

    merge = store_sub.add_parser(
        "merge", help="adopt source stores' segments into a destination "
                      "(hard links, one atomic commit, no row rewrite)")
    merge.add_argument("dest", help="destination store directory")
    merge.add_argument("sources", nargs="+",
                       help="source store directories, in merge order")
    merge.add_argument("--kinds", nargs="*", default=[],
                       choices=sorted(ROW_KINDS),
                       help="row kinds to adopt (default: all)")
    merge.add_argument("--verify", action="store_true",
                       help="verify each adopted segment's checksum")
    merge.set_defaults(func=cmd_store_merge)

    diff = store_sub.add_parser(
        "diff", help="vectorised diff of two stores: aligned group keys, "
                     "per-metric deltas, new/removed entities")
    diff.add_argument("store_a", help="baseline store directory")
    diff.add_argument("store_b", help="current store directory")
    diff.add_argument("--kind", action="append", default=None,
                      choices=sorted(ROW_KINDS),
                      help="restrict to this row kind (repeatable; default: "
                           "every diffable kind present)")
    diff.add_argument("--where", action="append", type=_parse_where,
                      default=[], metavar="EXPR",
                      help="predicate applied to both sides (pushdown), "
                           "e.g. run_id=bench")
    diff.add_argument("--limit", type=_positive_int, default=10,
                      help="changed/added/removed rows printed per kind")
    diff.set_defaults(func=cmd_store_diff)

    scenarios = subparsers.add_parser("scenarios", help="Table 4 energy scenarios")
    add_common(scenarios)
    scenarios.add_argument("--store", default=None, metavar="PATH",
                           help="persist the scenario rows into a results "
                                "store at PATH")
    scenarios.set_defaults(func=cmd_scenarios)

    fleet = subparsers.add_parser(
        "fleet", help="deterministic discrete-event fleet traffic simulation")
    add_common(fleet)
    fleet.add_argument("--users", type=_positive_int, default=50,
                       help="size of the virtual population")
    fleet.add_argument("--hours", type=float, default=24.0,
                       help="virtual-time horizon in hours")
    fleet.add_argument("--seed", type=int, default=0,
                       help="base seed of the per-user derived seeds")
    fleet.add_argument("--battery-threshold", type=float, default=0.2,
                       help="battery fraction under which requests offload")
    fleet.add_argument("--workers", type=_positive_int, default=None,
                       help="simulation worker count (results are identical "
                            "for any value)")
    fleet.add_argument("--chunk-size", type=_positive_int, default=None,
                       help="users per worker slice")
    fleet.add_argument("--processes", action="store_true",
                       help="fan out on a process pool instead of threads")
    fleet.add_argument("--store", dest="fleet_store", default=None,
                       metavar="PATH",
                       help="stream fleet_events into a results store at "
                            "PATH and serve the reports from it")
    fleet.add_argument("--rows-per-segment", type=_positive_int, default=8192,
                       help="store segment size for streamed ingestion")
    fleet.add_argument("--queue-wait-ms", type=float, default=2000.0,
                       help="device-queue wait cap before requests overflow")
    fleet.add_argument("--queue-overflow", choices=("shed", "cloud"),
                       default="shed",
                       help="overflow action: drop the request or offload it")
    fleet.add_argument("--diurnal", action="store_true",
                       help="modulate session starts with a night/day profile")
    fleet.add_argument("--recharge", action="store_true",
                       help="nightly charging windows (multi-day horizons)")
    fleet.add_argument("--cloud-capacity", action="store_true",
                       help="model shared regional cloud capacity: two-pass "
                            "deterministic interference to a damped fixed "
                            "point (writes fleet_load rows with --store)")
    fleet.add_argument("--cloud-bin-minutes", type=float, default=15.0,
                       help="width of the cloud load/service time bins")
    fleet.add_argument("--cloud-damping", type=float, default=0.5,
                       help="fixed-point damping factor in (0, 1]")
    fleet.add_argument("--cloud-max-passes", type=_positive_int, default=8,
                       help="iteration cap of the fixed point")
    fleet.add_argument("--telemetry", default=None, metavar="PATH",
                       help="run with telemetry enabled and persist the "
                            "metrics/spans into a sidecar store at PATH")
    fleet.set_defaults(func=cmd_fleet)

    campaign = subparsers.add_parser(
        "campaign", help="out-of-core sharded campaigns over fleet "
                         "populations")
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)
    campaign_run = campaign_sub.add_parser(
        "run", help="simulate a population sharded and merge into one store")
    campaign_run.add_argument("--users", type=_positive_int, default=100000,
                              help="size of the virtual population")
    campaign_run.add_argument("--shards", type=_positive_int, default=8,
                              help="contiguous user-range shards (output is "
                                   "bit-identical for any value)")
    campaign_run.add_argument("--store", required=True, metavar="DIR",
                              help="campaign directory (shard stores + "
                                   "merged.store)")
    campaign_run.add_argument("--compress", action="store_true",
                              help="zlib-compress sealed columnar segments")
    campaign_run.add_argument("--workload", default="ambient",
                              choices=("ambient", "zoo"),
                              help="population workload: sparse ambient "
                                   "checks (ecosystem scale) or the dense "
                                   "zoo scenarios (small campaigns)")
    campaign_run.add_argument("--hours", type=float, default=24.0,
                              help="virtual-time horizon in hours")
    campaign_run.add_argument("--seed", type=int, default=0,
                              help="base seed of the per-user derived seeds")
    campaign_run.add_argument("--rows-per-segment", type=_positive_int,
                              default=65536,
                              help="merged-event segment size")
    campaign_run.add_argument("--bin-minutes", type=float, default=15.0,
                              help="cloud demand-grid bin width")
    campaign_run.add_argument("--max-parallel", type=_positive_int,
                              default=None,
                              help="concurrently running shard processes "
                                   "(default: one per CPU)")
    campaign_run.add_argument("--telemetry", default=None, metavar="PATH",
                              help="run with telemetry enabled and persist "
                                   "the metrics/spans into a sidecar store "
                                   "at PATH")
    campaign_run.set_defaults(func=cmd_campaign_run)

    serve = subparsers.add_parser(
        "serve", help="HTTP query/report service over a (possibly live) "
                      "store with snapshot-isolated reads")
    serve.add_argument("path", help="store directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8736,
                       help="listen port (0 picks a free one)")
    serve.add_argument("--refresh", type=float, default=1.0, metavar="SECONDS",
                       help="poll interval of the generation refresh worker")
    serve.add_argument("--threads", type=_positive_int, default=8,
                       help="request handler thread pool size")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the segment/result caches")
    serve.add_argument("--compact-segments", type=_positive_int, default=None,
                       metavar="N",
                       help="background-compact a kind once it exceeds N "
                            "committed segments (invalidates serve caches)")
    serve.add_argument("--mmap", action="store_true",
                       help="serve column caches as read-only memory maps")
    serve.add_argument("--scan-workers", type=_positive_int, default=None,
                       metavar="N",
                       help="thread fan-out for per-request segment scans "
                            "(default sequential; results are bit-identical "
                            "for any worker count)")
    serve.set_defaults(func=cmd_serve)

    obs_parser = subparsers.add_parser(
        "obs", help="telemetry reports over a sidecar store")
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report", help="render a telemetry table (timeline, stages, "
                       "shard skew, metrics)")
    obs_report.add_argument("store", help="sidecar telemetry store path")
    obs_report.add_argument("--table", default="run_timeline",
                            choices=("run_timeline", "stages", "shard_skew",
                                     "metrics"))
    obs_report.add_argument("--run", default=None, metavar="ID",
                            help="restrict to one run_id (default: all rows)")
    obs_report.add_argument("--metric-class", default=None,
                            choices=("deterministic", "wallclock"),
                            help="metrics table only: restrict to one class")
    obs_report.set_defaults(func=cmd_obs_report)

    obs_snapshot = obs_sub.add_parser(
        "snapshot", help="write a drift-baseline snapshot (report tables + "
                         "deterministic counters) as JSON")
    obs_snapshot.add_argument("--out", required=True, metavar="PATH",
                              help="snapshot JSON destination")
    obs_snapshot.add_argument("--store", default=None, metavar="PATH",
                              help="campaign store to extract the Fig. "
                                   "8/9/10/15 report tables from")
    obs_snapshot.add_argument("--telemetry", default=None, metavar="PATH",
                              help="sidecar telemetry store to extract "
                                   "counters and wall-clock stats from")
    obs_snapshot.add_argument("--run", default=None, metavar="ID",
                              help="restrict telemetry rows to one run_id")
    obs_snapshot.add_argument("--meta", action="append", default=[],
                              metavar="KEY=VALUE",
                              help="provenance stamps carried in the "
                                   "snapshot (repeatable)")
    obs_snapshot.set_defaults(func=cmd_obs_snapshot)

    obs_drift = obs_sub.add_parser(
        "drift", help="classify drift against a baseline snapshot (or "
                      "across BENCH_*.json history with --bench); exit "
                      "code = max severity (0 clean / 1 tolerated / "
                      "2 breach / 3 exact)")
    obs_drift.add_argument("--baseline", default=None, metavar="PATH",
                           help="committed baseline snapshot JSON")
    obs_drift.add_argument("--snapshot", default=None, metavar="PATH",
                           help="current-side snapshot JSON (alternative "
                                "to --store/--telemetry)")
    obs_drift.add_argument("--store", default=None, metavar="PATH",
                           help="build the current side from this campaign "
                                "store")
    obs_drift.add_argument("--telemetry", default=None, metavar="PATH",
                           help="build the current side from this telemetry "
                                "store")
    obs_drift.add_argument("--run", default=None, metavar="ID",
                           help="telemetry run_id filter for the current "
                                "side")
    obs_drift.add_argument("--bench", nargs="*", default=None,
                           metavar="BENCH_JSON",
                           help="perf-trajectory mode: ingest these "
                                "BENCH_*.json files (bare --bench globs "
                                "BENCH_*.json in the current directory) and "
                                "compare each benchmark's two latest runs")
    obs_drift.add_argument("--bench-store", default="bench_trajectory.store",
                           metavar="PATH",
                           help="bench_runs store the trajectory accumulates "
                                "in (ingestion is idempotent)")
    obs_drift.add_argument("--rel-tol", type=float, default=0.25,
                           help="relative tolerance band for wall-clock "
                                "metrics")
    obs_drift.add_argument("--report", default=None, metavar="PATH",
                           help="write the classified findings as JSON "
                                "(the CI artifact)")
    obs_drift.add_argument("--fail-on", default="any",
                           choices=("any", "breach", "exact"),
                           help="lowest severity that makes the exit code "
                                "nonzero (default: any — the raw severity "
                                "is the exit code)")
    obs_drift.set_defaults(func=cmd_obs_drift)

    compare = subparsers.add_parser("compare", help="2020 vs 2021 temporal analysis")
    compare.add_argument("--scale", type=float, default=0.05)
    compare.add_argument("--top", type=int, default=10,
                         help="number of categories to list")
    compare.set_defaults(func=cmd_compare)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
