"""Command-line interface for the gaugeNN reproduction.

Four subcommands mirror the paper's workflow:

* ``census``    — generate a synthetic snapshot and run the offline analysis
                  (Tables 2-3, Fig. 4, Sec. 4.5/6.1 statistics).
* ``benchmark`` — run the unique models of a snapshot across the device fleet
                  (Figs. 8-10), fanned out on the parallel sweep runner.
* ``sweep``     — full declarative device x backend x batch x thread sweep
                  with upfront compatibility pruning (Sec. 6.2/6.3 style).
* ``scenarios`` — scenario-driven energy costs on the Qualcomm boards (Table 4).
* ``compare``   — temporal comparison between the 2020 and 2021 snapshots
                  (Fig. 5, Sec. 4.6).

Example::

    python -m repro.cli census --scale 0.05
    python -m repro.cli benchmark --scale 0.05 --devices A20 S21 --workers 4
    python -m repro.cli sweep --scale 0.02 --backends cpu xnnpack --batches 1 8
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro.android.appgen import AppGenerator, GeneratorConfig, ModelPool
from repro.android.playstore import PlayStore
from repro.core import reports
from repro.core.optimizations import analyze_optimizations
from repro.core.pipeline import GaugeNN
from repro.core.scenarios import STANDARD_SCENARIOS, run_scenario, summarize
from repro.core.temporal import compare_snapshots
from repro.core.uniqueness import analyze_finetuning, analyze_uniqueness
from repro.devices.device import DEVICE_FLEET, DEV_BOARDS, device_by_name
from repro.devices.scheduler import ThreadConfig
from repro.runtime import Backend, SweepRunner, SweepSpec

__all__ = ["main", "build_parser"]


def _build_store(scale: float, snapshots: Sequence[str]) -> PlayStore:
    pool = ModelPool()
    configs = {
        "2020": GeneratorConfig.snapshot_2020,
        "2021": GeneratorConfig.snapshot_2021,
    }
    generated = [
        AppGenerator(configs[label](scale=scale), pool).generate()
        for label in snapshots
    ]
    return PlayStore(generated)


def _analysis_for(scale: float, label: str):
    store = _build_store(scale, [label])
    return GaugeNN(store).analyze_snapshot(label)


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #
def cmd_census(args: argparse.Namespace) -> int:
    """Offline characterisation of one snapshot."""
    analysis = _analysis_for(args.scale, args.snapshot)
    row = reports.dataset_table(analysis)
    print(f"snapshot {row.label} ({row.date}) at scale {args.scale}")
    print(f"  total apps          : {row.total_apps}")
    print(f"  apps w/ frameworks  : {row.apps_with_frameworks} ({row.apps_with_frameworks_pct:.1f}%)")
    print(f"  apps w/ models      : {row.apps_with_models} ({row.apps_with_models_pct:.1f}%)")
    print(f"  total models        : {row.total_models}")
    print(f"  unique models       : {row.unique_models} ({row.unique_models_pct:.1f}%)")

    print("\nmodels per framework:")
    for framework, count in sorted(analysis.models_by_framework().items(),
                                   key=lambda item: -item[1]):
        print(f"  {framework:<8} {count}")

    print("\ntop tasks:")
    for task, count in sorted(analysis.models_by_task().items(), key=lambda i: -i[1])[:10]:
        print(f"  {task:<24} {count}")

    uniqueness = analyze_uniqueness(analysis.models)
    finetuning = analyze_finetuning(analysis.models)
    adoption = analyze_optimizations(analysis.models)
    print("\nuniqueness / fine-tuning:")
    print(f"  shared instances    : {100 * uniqueness.shared_fraction:.1f}%")
    print(f"  sharing >=20% wts   : {100 * finetuning.sharing_fraction:.1f}% of unique models")
    print("\noptimisation adoption:")
    print(f"  dequantize layers   : {100 * adoption.dequantize_fraction:.1f}%")
    print(f"  int8 weights        : {100 * adoption.int8_weight_fraction:.1f}%")
    print(f"  near-zero weights   : {100 * adoption.mean_near_zero_weight_fraction:.2f}%")
    print(f"  clustering / pruning: {adoption.clustered_models} / {adoption.pruned_models}")
    return 0


def cmd_benchmark(args: argparse.Namespace) -> int:
    """Fleet-wide latency/energy benchmark of the unique models."""
    analysis = _analysis_for(args.scale, args.snapshot)
    device_names = args.devices or [device.name for device in DEVICE_FLEET]
    backend = Backend(args.backend)

    print(f"benchmarking {analysis.unique_models} unique models on "
          f"{device_names} ({backend.value})")
    results = GaugeNN.benchmark_unique_models(
        analysis,
        [device_by_name(name) for name in device_names],
        backends=(backend,),
        num_inferences=args.inferences,
        max_workers=args.workers,
    )
    results_by_device = {name: [] for name in device_names}
    for result in results:
        results_by_device[result.device_name].append(result)

    print(f"\n{'device':<8}{'models':>7}{'mean ms':>10}{'median ms':>12}{'median mJ':>12}")
    for name, device_results in results_by_device.items():
        if not device_results:
            print(f"{name:<8}{0:>7}")
            continue
        latencies = [r.latency_ms for r in device_results]
        energies = [r.energy_mj for r in device_results]
        print(f"{name:<8}{len(device_results):>7}{np.mean(latencies):>10.1f}"
              f"{np.median(latencies):>12.1f}{np.median(energies):>12.1f}")
    return 0


def _parse_thread_config(label: str) -> Optional[ThreadConfig]:
    """Parse a Fig. 12-style thread label: ``auto``, ``4`` or ``4a2``.

    Used as an argparse ``type``, so a malformed label becomes a clean usage
    error instead of a traceback.
    """
    try:
        if label == "auto":
            return None
        if "a" in label:
            threads, affinity = label.split("a", 1)
            return ThreadConfig(threads=int(threads), affinity=int(affinity))
        return ThreadConfig(threads=int(label))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid thread config {label!r} (expected auto, 4 or 4a2)")


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return parsed


def cmd_sweep(args: argparse.Namespace) -> int:
    """Full declarative fleet sweep with compatibility pruning."""
    analysis = _analysis_for(args.scale, args.snapshot)
    graphs = GaugeNN.unique_graphs(analysis)
    device_names = args.devices or [device.name for device in DEVICE_FLEET]
    spec = SweepSpec(
        devices=tuple(device_by_name(name) for name in device_names),
        graphs=tuple(graphs),
        backends=tuple(Backend(b) for b in args.backends),
        batch_sizes=tuple(args.batches),
        thread_configs=tuple(args.threads),
        num_inferences=args.inferences,
        seed=args.seed,
    )
    runner = SweepRunner(spec, max_workers=args.workers)
    jobs = runner.compatible_jobs()
    print(f"sweep: {spec.num_combinations} combinations, "
          f"{len(jobs)} runnable after pruning "
          f"({len(graphs)} models x {len(device_names)} devices x "
          f"{len(spec.backends)} backends x {len(spec.batch_sizes)} batches x "
          f"{len(spec.thread_configs)} thread configs)")
    results = runner.run()

    grouped = {}
    for result in results:
        key = (result.device_name, result.backend.value, result.batch_size,
               result.thread_label)
        grouped.setdefault(key, []).append(result)
    print(f"\n{'device':<8}{'backend':<10}{'batch':>6}{'threads':>9}"
          f"{'models':>8}{'mean ms':>10}{'median mJ':>12}")
    for (device, backend, batch, threads), group in sorted(grouped.items()):
        latencies = [r.latency_ms for r in group]
        energies = [r.energy_mj for r in group]
        print(f"{device:<8}{backend:<10}{batch:>6}{threads:>9}"
              f"{len(group):>8}{np.mean(latencies):>10.1f}"
              f"{np.median(energies):>12.1f}")
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    """Table 4 scenario energy on the development boards."""
    analysis = _analysis_for(args.scale, args.snapshot)
    pairs = GaugeNN.graphs_with_tasks(analysis)
    print(f"{'device':<8}{'scenario':<12}{'models':>7}{'avg mAh':>12}{'max mAh':>12}")
    for device in DEV_BOARDS:
        for scenario in STANDARD_SCENARIOS:
            summary = summarize(run_scenario(scenario, device, pairs))
            if summary is None:
                print(f"{device.name:<8}{scenario.name:<12}{'-':>7}")
                continue
            print(f"{device.name:<8}{scenario.name:<12}{summary.model_count:>7}"
                  f"{summary.mean_mah:>12.3f}{summary.max_mah:>12.3f}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Temporal comparison between the two snapshots."""
    store = _build_store(args.scale, ["2020", "2021"])
    gauge = GaugeNN(store)
    earlier = gauge.analyze_snapshot("2020")
    later = gauge.analyze_snapshot("2021")
    comparison = compare_snapshots(earlier, later)
    print(f"models: {comparison.earlier_total_models} -> {comparison.later_total_models} "
          f"({comparison.model_growth:.2f}x)")
    print(f"cloud-ML apps: {comparison.earlier_cloud_apps} -> {comparison.later_cloud_apps} "
          f"({comparison.cloud_growth:.2f}x)")
    print("\ntop category changes (added/removed):")
    for churn in comparison.churn_sorted_by_net_change()[: args.top]:
        print(f"  {churn.category:<22} +{churn.added:<4} -{churn.removed:<4} "
              f"net {churn.net_change:+d}")
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="gaugeNN reproduction: characterise and benchmark mobile DNNs",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--scale", type=float, default=0.05,
                         help="fraction of the paper's dataset size to generate")
        sub.add_argument("--snapshot", choices=("2020", "2021"), default="2021",
                         help="which snapshot to analyse")

    census = subparsers.add_parser("census", help="offline DNN characterisation")
    add_common(census)
    census.set_defaults(func=cmd_census)

    bench = subparsers.add_parser("benchmark", help="fleet latency/energy benchmark")
    add_common(bench)
    bench.add_argument("--devices", nargs="*", default=None,
                       choices=[device.name for device in DEVICE_FLEET],
                       help="devices to benchmark (default: whole fleet)")
    bench.add_argument("--backend", default="cpu",
                       choices=[backend.value for backend in Backend])
    bench.add_argument("--inferences", type=int, default=3,
                       help="measured inferences per model")
    bench.add_argument("--workers", type=_positive_int, default=None,
                       help="sweep worker threads (default: one per job, capped "
                            "at the CPU count)")
    bench.set_defaults(func=cmd_benchmark)

    sweep = subparsers.add_parser(
        "sweep", help="declarative device x backend x batch x thread sweep")
    add_common(sweep)
    sweep.add_argument("--devices", nargs="*", default=None,
                       choices=[device.name for device in DEVICE_FLEET],
                       help="devices to sweep (default: whole fleet)")
    sweep.add_argument("--backends", nargs="*",
                       default=[Backend.CPU.value],
                       choices=[backend.value for backend in Backend])
    sweep.add_argument("--batches", nargs="*", type=_positive_int, default=[1])
    sweep.add_argument("--threads", nargs="*", type=_parse_thread_config,
                       default=[None],
                       help="thread configs: auto, a count (4) or count+affinity (4a2)")
    sweep.add_argument("--inferences", type=_positive_int, default=3)
    sweep.add_argument("--seed", type=int, default=0,
                       help="base seed for the deterministic per-job seeds")
    sweep.add_argument("--workers", type=_positive_int, default=None)
    sweep.set_defaults(func=cmd_sweep)

    scenarios = subparsers.add_parser("scenarios", help="Table 4 energy scenarios")
    add_common(scenarios)
    scenarios.set_defaults(func=cmd_scenarios)

    compare = subparsers.add_parser("compare", help="2020 vs 2021 temporal analysis")
    compare.add_argument("--scale", type=float, default=0.05)
    compare.add_argument("--top", type=int, default=10,
                         help="number of categories to list")
    compare.set_defaults(func=cmd_compare)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
