"""Setuptools shim so editable installs work without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` in offline environments.
"""

from setuptools import setup

setup()
