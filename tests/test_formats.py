"""Unit tests for framework file formats, signatures and serialisation."""

import pytest

from repro.dnn.zoo import blazeface, mobilenet_v1, autocomplete_lstm
from repro.formats import (
    FORMAT_REGISTRY,
    ModelArtifact,
    deserialize_model,
    detect_framework,
    serialize_model,
    validate,
)
from repro.formats import caffe, ncnn, snpe, tensorflow, tflite
from repro.formats.registry import (
    extensions_for,
    frameworks_for_extension,
    known_extensions,
    total_format_count,
)
from repro.formats.serialize import deserialize_file, supported_frameworks

FRAMEWORKS = ("tflite", "caffe", "ncnn", "tf", "snpe")


@pytest.fixture(scope="module")
def graph():
    return blazeface(weight_seed=21)


class TestRegistry:
    def test_appendix_table5_has_69_formats(self):
        assert total_format_count() == 69

    def test_every_framework_has_extensions(self):
        for spec in FORMAT_REGISTRY:
            assert spec.extensions

    def test_extensions_for_known_framework(self):
        assert ".tflite" in extensions_for("tflite")
        assert ".dlc" in extensions_for("snpe")

    def test_extensions_for_unknown_framework(self):
        with pytest.raises(KeyError):
            extensions_for("not-a-framework")

    def test_generic_extensions_map_to_many_frameworks(self):
        assert len(frameworks_for_extension(".pb")) >= 3
        assert len(frameworks_for_extension("pb")) >= 3

    def test_known_extensions_is_superset(self):
        assert {".tflite", ".caffemodel", ".param", ".dlc"} <= known_extensions()


class TestRoundTrip:
    @pytest.mark.parametrize("framework", FRAMEWORKS)
    def test_serialize_deserialize_preserves_model(self, graph, framework):
        artifact = serialize_model(graph, framework)
        restored = deserialize_model(artifact)
        assert restored.framework == framework
        assert restored.total_parameters() == graph.total_parameters()
        assert restored.total_flops() == graph.total_flops()
        assert restored.weights_checksum() == graph.weights_checksum()

    @pytest.mark.parametrize("framework", FRAMEWORKS)
    def test_round_trip_layer_structure(self, graph, framework):
        restored = deserialize_model(serialize_model(graph, framework))
        assert [l.op for l in restored.layers] == [l.op for l in graph.layers]

    def test_round_trip_text_model(self):
        graph = autocomplete_lstm(weight_seed=3)
        restored = deserialize_model(serialize_model(graph, "tflite"))
        assert restored.modality == graph.modality

    def test_serialize_unknown_framework(self, graph):
        with pytest.raises(ValueError):
            serialize_model(graph, "mxnet")

    def test_supported_frameworks(self):
        assert set(supported_frameworks()) == set(FRAMEWORKS)


class TestSignatures:
    def test_tflite_identifier_at_offset_four(self, graph):
        artifact = tflite.write(graph)
        data = artifact.files[artifact.primary]
        assert data[4:8] == b"TFL3"
        assert tflite.matches(data)

    def test_caffe_artifact_is_two_files(self, graph):
        artifact = caffe.write(graph)
        assert len(artifact.files) == 2
        assert artifact.primary.endswith(".caffemodel")
        prototxt = next(name for name in artifact.files if name.endswith(".prototxt"))
        assert caffe.matches_prototxt(artifact.files[prototxt])

    def test_ncnn_param_magic(self, graph):
        artifact = ncnn.write(graph)
        param = artifact.files[artifact.primary]
        assert param.decode().splitlines()[0] == "7767517"
        assert ncnn.matches_param(param)

    def test_snpe_and_tf_markers(self, graph):
        assert snpe.matches(snpe.write(graph).files[f"{graph.name}.dlc"])
        assert tensorflow.matches(tensorflow.write(graph).files[f"{graph.name}.pb"])

    @pytest.mark.parametrize("framework", FRAMEWORKS)
    def test_detect_framework(self, graph, framework):
        artifact = serialize_model(graph, framework)
        detected = detect_framework(artifact.files[artifact.primary])
        assert detected is not None
        assert detected[0] == framework

    def test_detect_rejects_garbage(self):
        assert detect_framework(b"\x00" * 64) is None
        assert detect_framework(b"") is None

    def test_validate_requires_candidate_extension(self, graph):
        artifact = tflite.write(graph)
        data = artifact.files[artifact.primary]
        assert validate("model.tflite", data) == "tflite"
        assert validate("model.xyz", data) is None

    def test_validate_rejects_encrypted_blob(self):
        assert validate("model.tflite", bytes(range(256)) * 16) is None

    def test_deserialize_file_autodetects(self, graph):
        artifact = tflite.write(graph)
        restored = deserialize_file(artifact.files[artifact.primary])
        assert restored.name == graph.name

    def test_deserialize_structure_only_file_fails(self, graph):
        artifact = caffe.write(graph)
        prototxt = next(name for name in artifact.files if name.endswith(".prototxt"))
        with pytest.raises(ValueError):
            deserialize_file(artifact.files[prototxt])


class TestModelArtifact:
    def test_checksum_is_stable_and_content_sensitive(self, graph):
        a = serialize_model(graph, "tflite")
        b = serialize_model(graph, "tflite")
        c = serialize_model(blazeface(weight_seed=99), "tflite")
        assert a.checksum() == b.checksum()
        assert a.checksum() != c.checksum()

    def test_primary_must_be_in_files(self):
        with pytest.raises(ValueError):
            ModelArtifact(framework="tflite", primary="missing.tflite", files={})

    def test_total_size_and_file_names(self, graph):
        artifact = caffe.write(graph)
        assert artifact.total_size == sum(len(d) for d in artifact.files.values())
        assert artifact.file_names[0] == artifact.primary
