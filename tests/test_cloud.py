"""Tests for the shared-capacity cloud layer: capacity curves, load
profiles, the two-pass interference fixed point, device queueing,
diurnal arrivals and the recharge model."""

import numpy as np
import pytest

from repro.cloud import (
    ApiCapacity,
    CapacityModel,
    CloudRegion,
    FIG15_API_NAMES,
    InterferenceConfig,
    InterferenceSimulator,
    LoadProfile,
    ServiceTable,
    load_report,
)
from repro.devices.battery import RechargeSchedule
from repro.devices.device import PHONES
from repro.fleet import (
    DiurnalProfile,
    FleetSimulator,
    FleetSpec,
    QueuePolicy,
    ROUTE_CLOUD,
    ROUTE_DEVICE,
    ROUTE_QUEUED,
    ROUTE_SHED,
    RoutingPolicy,
    congested_population,
    derive_user_region,
    simulate_user_naive,
    zoo_population,
)
from repro.store import ResultStore

TRACE_COLUMNS = ("latency_ms", "energy_mj", "throttle", "battery_fraction",
                 "discharge_mah", "wait_ms")

#: Small capacity so modest test fleets visibly congest the APIs.
TIGHT_CAPACITY = CapacityModel(
    regions=(CloudRegion("east"), CloudRegion("west", capacity_scale=0.5)),
    default=ApiCapacity(base_service_ms=45.0, servers=3, per_server_rps=2.0),
)


def assert_traces_equal(fast, slow, context=""):
    assert np.array_equal(fast.route, slow.route), context
    for name in TRACE_COLUMNS:
        np.testing.assert_allclose(
            getattr(fast, name), getattr(slow, name),
            rtol=1e-9, atol=1e-9, err_msg=f"{context}: {name}")


@pytest.fixture(scope="module")
def congested_spec():
    """Low-tier phones running a segmentation model that queues when hot."""
    return FleetSpec(graphs_with_tasks=congested_population(),
                     num_users=8, horizon_s=24 * 3600.0,
                     devices=(PHONES[0],), seed=5)


@pytest.fixture(scope="module")
def congested_traces(congested_spec):
    return FleetSimulator(congested_spec, max_workers=1).collect()


class TestCapacityModel:
    def test_service_time_monotone_in_load(self):
        model = CapacityModel()
        loads = np.linspace(0.0, 30.0, 50)
        service = model.service_ms("Speech", "us-central", loads)
        assert np.all(np.diff(service) >= 0)
        assert service[0] == pytest.approx(model.default.base_service_ms)

    def test_smaller_regions_congest_earlier(self):
        model = CapacityModel()
        load = 4.0
        big = float(model.service_ms("Speech", "us-central", load))
        small = float(model.service_ms("Speech", "apac-se", load))
        assert small > big

    def test_overload_saturates_finite(self):
        model = CapacityModel()
        ceiling = model.saturated_service_ms("Speech", "us-central")
        beyond = float(model.service_ms("Speech", "us-central", 1e9))
        assert np.isfinite(ceiling)
        assert beyond == pytest.approx(ceiling)

    def test_api_overrides_apply(self):
        model = CapacityModel(api_capacities={
            "Speech": ApiCapacity(base_service_ms=120.0)})
        assert float(model.service_ms("Speech", "us-central", 0.0)) \
            == pytest.approx(120.0)
        assert float(model.service_ms("Vision/Face", "us-central", 0.0)) \
            == pytest.approx(model.default.base_service_ms)

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            CapacityModel().region("mars")
        with pytest.raises(KeyError):
            CapacityModel(api_capacities={"NotAnApi": ApiCapacity()})

    def test_validation(self):
        with pytest.raises(ValueError):
            CloudRegion("", 1.0)
        with pytest.raises(ValueError):
            CloudRegion("x", 0.0)
        with pytest.raises(ValueError):
            ApiCapacity(servers=0)
        with pytest.raises(ValueError):
            CapacityModel(regions=())
        with pytest.raises(ValueError):
            CapacityModel(regions=(CloudRegion("a"), CloudRegion("a")))
        with pytest.raises(ValueError):
            CapacityModel(max_utilization=1.0)


class TestRegionAssignment:
    def test_deterministic_and_seed_scoped(self):
        regions = ("east", "west")
        assert derive_user_region(0, 7, regions) \
            == derive_user_region(0, 7, regions)
        picks = {derive_user_region(0, uid, regions) for uid in range(50)}
        assert picks == set(regions)

    def test_independent_of_event_plan(self):
        """Changing the region list never perturbs a user's draws."""
        base = FleetSpec(graphs_with_tasks=zoo_population(), num_users=4,
                         horizon_s=3600.0, seed=3)
        sharded = FleetSpec(graphs_with_tasks=zoo_population(), num_users=4,
                            horizon_s=3600.0, seed=3,
                            regions=("east", "west"))
        for uid in range(4):
            _, plan_a = base.materialize(uid)
            _, plan_b = sharded.materialize(uid)
            assert np.array_equal(plan_a.times, plan_b.times)
            assert np.array_equal(plan_a.noise, plan_b.noise)
            assert np.array_equal(plan_a.rtt_ms, plan_b.rtt_ms)


class TestLoadProfile:
    def _traces(self, num_users=12):
        spec = FleetSpec(graphs_with_tasks=zoo_population(),
                         num_users=num_users, horizon_s=4 * 3600.0,
                         seed=2, regions=("east", "west"))
        return spec, FleetSimulator(spec, max_workers=1).collect()

    def test_counts_offloaded_requests_only(self):
        spec, traces = self._traces()
        profile = LoadProfile(spec.regions, spec.horizon_s, 900.0)
        added = sum(profile.add_trace(t) for t in traces)
        offloaded = sum(t.num_offloaded for t in traces)
        assert added == offloaded == profile.total_requests

    def test_merge_is_pure_addition(self):
        """Any split of the traces merges to the identical grid."""
        spec, traces = self._traces()
        whole = LoadProfile(spec.regions, spec.horizon_s, 900.0)
        for trace in traces:
            whole.add_trace(trace)
        left = LoadProfile(spec.regions, spec.horizon_s, 900.0)
        right = LoadProfile(spec.regions, spec.horizon_s, 900.0)
        for trace in traces[::2]:
            left.add_trace(trace)
        for trace in reversed(traces[1::2]):  # order must not matter
            right.add_trace(trace)
        merged = left.merge(right)
        assert np.array_equal(merged.requests, whole.requests)
        assert np.array_equal(merged.payload_bytes, whole.payload_bytes)

    def test_store_round_trip_across_segment_splits(self, tmp_path):
        spec, traces = self._traces()
        profile = LoadProfile(spec.regions, spec.horizon_s, 900.0)
        for trace in traces:
            profile.add_trace(trace)
        store = ResultStore(tmp_path / "load.store")
        # Tiny segments: the cells land scattered across many segments.
        with store.writer(rows_per_segment=2) as writer:
            count = writer.append_many(profile.cells())
        assert count == store.num_rows("fleet_load")
        rebuilt = LoadProfile.from_store(store, spec.regions, spec.horizon_s,
                                         900.0)
        assert np.array_equal(rebuilt.requests, profile.requests)
        assert np.array_equal(rebuilt.payload_bytes, profile.payload_bytes)

    def test_merge_shape_mismatch_rejected(self):
        a = LoadProfile(("east",), 3600.0, 900.0)
        b = LoadProfile(("east",), 3600.0, 600.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_bin_indices_clip_to_horizon(self):
        profile = LoadProfile(("east",), 3600.0, 900.0)
        assert profile.num_bins == 4
        bins = profile.bin_indices(np.array([0.0, 899.9, 900.0, 3599.9]))
        assert list(bins) == [0, 0, 1, 3]


class TestServiceTable:
    def test_constant_table(self):
        table = ServiceTable.constant(("east",), FIG15_API_NAMES,
                                      3600.0, 900.0, 45.0)
        assert table.num_bins == 4
        assert np.all(table.service_ms == 45.0)

    def test_lookup_follows_bins(self):
        grid = np.arange(8, dtype=np.float64).reshape(1, 2, 4)
        table = ServiceTable(("east",), ("a", "b"), 900.0, grid)
        times = np.array([0.0, 950.0, 3599.0, 1e9])
        assert list(table.service_for("east", "b", times)) \
            == [4.0, 5.0, 7.0, 7.0]

    def test_max_delta(self):
        a = ServiceTable.constant(("east",), ("a",), 1800.0, 900.0, 45.0)
        b = ServiceTable.constant(("east",), ("a",), 1800.0, 900.0, 47.5)
        assert a.max_delta_ms(b) == pytest.approx(2.5)


class TestDeviceQueueing:
    def test_congestion_produces_sheds_and_waits(self, congested_traces):
        shed = sum(t.num_shed for t in congested_traces)
        assert shed > 0, "tuned population should overflow the device queue"
        waits = np.concatenate([t.wait_ms for t in congested_traces
                                if t.num_events])
        assert float(waits.max()) > 0.0
        # Served on-device requests never wait beyond the overflow cap.
        for trace in congested_traces:
            served = trace.route == ROUTE_DEVICE
            if served.any():
                assert float(trace.wait_ms[served].max()) <= 2000.0

    def test_conservation_invariant_per_user(self, congested_traces):
        for trace in congested_traces:
            counts = trace.route_counts()
            assert sum(counts.values()) == trace.num_events
            assert counts["device"] == trace.num_on_device
            assert counts["shed"] == trace.num_shed

    def test_vectorised_matches_reference_under_congestion(
            self, congested_spec):
        simulator = FleetSimulator(congested_spec, max_workers=1)
        for user_id in range(congested_spec.num_users):
            assert_traces_equal(simulator.simulate_user(user_id),
                                simulate_user_naive(congested_spec, user_id),
                                context=f"user {user_id}")

    def test_shed_requests_cost_nothing(self, congested_traces):
        for trace in congested_traces:
            shed = trace.route == ROUTE_SHED
            if shed.any():
                assert np.all(trace.energy_mj[shed] == 0.0)
                assert np.all(trace.discharge_mah[shed] == 0.0)
                assert np.all(trace.throttle[shed] == 1.0)

    def test_served_latency_includes_wait(self, congested_traces):
        for trace in congested_traces:
            served = trace.route == ROUTE_DEVICE
            if served.any():
                assert np.all(trace.latency_ms[served]
                              >= trace.wait_ms[served])

    def test_overflow_to_cloud_instead_of_shedding(self, congested_spec):
        from dataclasses import replace

        policy = RoutingPolicy(queue=QueuePolicy(max_wait_ms=2000.0,
                                                 overflow="cloud"))
        spec = replace(congested_spec, policy=policy)
        simulator = FleetSimulator(spec, max_workers=1)
        traces = simulator.collect()
        assert sum(t.num_shed for t in traces) == 0
        assert sum(t.num_offloaded for t in traces) > 0
        for user_id in range(spec.num_users):
            assert_traces_equal(simulator.simulate_user(user_id),
                                simulate_user_naive(spec, user_id),
                                context=f"user {user_id}")

    def test_unbounded_queue_leaves_backlog_at_horizon(self):
        # Seed 17 places a congested video-call session across the horizon
        # end, so the uncapped queue is still draining when time runs out.
        policy = RoutingPolicy(
            queue=QueuePolicy(max_wait_ms=float("inf")))
        spec = FleetSpec(graphs_with_tasks=congested_population(),
                         num_users=12, horizon_s=24 * 3600.0,
                         devices=(PHONES[0],), seed=17, policy=policy)
        simulator = FleetSimulator(spec, max_workers=1)
        traces = simulator.collect()
        assert sum(t.num_shed for t in traces) == 0
        queued = sum(t.num_queued for t in traces)
        assert queued > 0, "an uncapped queue should still be busy at the horizon"
        for trace in traces:
            backlog = trace.route == ROUTE_QUEUED
            if backlog.any():
                # The backlog is a suffix property of the congested tail:
                # nothing after the first queued event is served on-device.
                first = int(np.argmax(backlog))
                assert not (trace.route[first:] == ROUTE_DEVICE).any()
        for user_id in range(spec.num_users):
            assert_traces_equal(simulator.simulate_user(user_id),
                                simulate_user_naive(spec, user_id),
                                context=f"user {user_id}")

    def test_queue_policy_validation(self):
        with pytest.raises(ValueError):
            QueuePolicy(max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            QueuePolicy(overflow="retry")


class TestRecharge:
    def _spec(self, recharge):
        return FleetSpec(graphs_with_tasks=zoo_population(), num_users=10,
                         horizon_s=3 * 86400.0, seed=2, recharge=recharge)

    def test_multi_day_horizon_recovers_at_boundaries(self):
        spec = self._spec(RechargeSchedule())
        traces = FleetSimulator(spec, max_workers=1).collect()
        rises = sum(1 for t in traces if t.num_events
                    and (np.diff(t.battery_fraction) > 1e-12).any())
        assert rises > 0, "recharge should lift some battery trajectory"

    def test_without_recharge_drain_is_monotone(self):
        spec = self._spec(None)
        for trace in FleetSimulator(spec, max_workers=1).collect():
            if trace.num_events:
                assert np.all(np.diff(trace.battery_fraction) <= 1e-15)

    def test_vectorised_matches_reference_across_days(self):
        spec = self._spec(RechargeSchedule(start_hour=2.0, duration_h=3.0,
                                           level=0.9))
        simulator = FleetSimulator(spec, max_workers=1)
        for user_id in range(spec.num_users):
            assert_traces_equal(simulator.simulate_user(user_id),
                                simulate_user_naive(spec, user_id),
                                context=f"user {user_id}")

    def test_boundaries(self):
        schedule = RechargeSchedule(start_hour=1.0, duration_h=4.0)
        ends = schedule.boundaries(3 * 86400.0)
        assert list(ends) == [5 * 3600.0, 86400.0 + 5 * 3600.0,
                              2 * 86400.0 + 5 * 3600.0]
        assert schedule.boundaries(3600.0).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RechargeSchedule(start_hour=24.0)
        with pytest.raises(ValueError):
            RechargeSchedule(duration_h=0.0)
        with pytest.raises(ValueError):
            RechargeSchedule(level=0.0)


class TestDiurnal:
    def test_night_quieter_than_evening(self):
        profile = DiurnalProfile.default()
        u = np.linspace(0.0, 1.0, 50_000, endpoint=False)
        starts = profile.session_start_times(u, 86400.0)
        night = float(((starts % 86400.0) < 6 * 3600.0).mean())
        evening = float(((starts % 86400.0) >= 18 * 3600.0).mean())
        assert night < 0.10
        assert evening > 0.30

    def test_flat_profile_reduces_to_uniform(self):
        profile = DiurnalProfile(hourly_weights=(1.0,) * 24)
        u = np.array([0.0, 0.25, 0.5, 0.999])
        np.testing.assert_allclose(
            profile.session_start_times(u, 86400.0), u * 86400.0)

    def test_tiles_across_multi_day_horizons(self):
        profile = DiurnalProfile.default()
        u = np.linspace(0.0, 1.0, 20_000, endpoint=False)
        starts = profile.session_start_times(u, 2 * 86400.0)
        assert float(starts.max()) < 2 * 86400.0
        day_one = float((starts < 86400.0).mean())
        assert 0.4 < day_one < 0.6  # both days carry the same profile

    def test_consumes_one_draw_per_session(self):
        """Enabling diurnal must not shift any later draw in the plan."""
        base = FleetSpec(graphs_with_tasks=zoo_population(), num_users=6,
                         horizon_s=86400.0, seed=4)
        shaped = FleetSpec(graphs_with_tasks=zoo_population(), num_users=6,
                           horizon_s=86400.0, seed=4,
                           diurnal=DiurnalProfile.default())
        for uid in range(6):
            _, plan_a = base.materialize(uid)
            _, plan_b = shaped.materialize(uid)
            assert plan_a.num_events == plan_b.num_events
            np.testing.assert_allclose(plan_a.noise, plan_b.noise)
            np.testing.assert_allclose(plan_a.rtt_ms, plan_b.rtt_ms)
            assert plan_a.start_battery_fraction \
                == plan_b.start_battery_fraction

    def test_vectorised_matches_reference(self):
        spec = FleetSpec(graphs_with_tasks=zoo_population(), num_users=8,
                         horizon_s=86400.0, seed=6,
                         diurnal=DiurnalProfile.default())
        simulator = FleetSimulator(spec, max_workers=1)
        for user_id in range(spec.num_users):
            assert_traces_equal(simulator.simulate_user(user_id),
                                simulate_user_naive(spec, user_id),
                                context=f"user {user_id}")

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile(hourly_weights=(1.0,) * 23)
        with pytest.raises(ValueError):
            DiurnalProfile(hourly_weights=(0.0,) + (1.0,) * 23)


class TestInterference:
    @pytest.fixture(scope="class")
    def spec(self):
        # 40 users over 8 h: the full-size unet users capability-offload
        # their whole video calls, so the APIs see real sustained load.
        return FleetSpec(graphs_with_tasks=zoo_population(), num_users=40,
                         horizon_s=8 * 3600.0, seed=0)

    @pytest.fixture(scope="class")
    def result(self, spec):
        simulator = InterferenceSimulator(
            spec, TIGHT_CAPACITY, config=InterferenceConfig(bin_seconds=900.0))
        return simulator.run()

    def test_converges_within_bounded_passes(self, result):
        assert result.converged
        assert result.passes <= InterferenceConfig().max_passes + 1
        assert result.deltas_ms[-1] <= InterferenceConfig().tolerance_ms

    def test_interference_inflates_cloud_latency(self, spec, result):
        nominal = spec.policy.cloud.service_ms
        assert result.peak_service_ms > nominal
        # Final traces carry the inflated service times.
        cloud_lat = np.concatenate([
            t.latency_ms[t.route == ROUTE_CLOUD]
            for t in result.traces if t.num_offloaded])
        flat = FleetSimulator(
            InterferenceSimulator(spec, TIGHT_CAPACITY).spec,
            max_workers=1).collect()
        flat_lat = np.concatenate([
            t.latency_ms[t.route == ROUTE_CLOUD]
            for t in flat if t.num_offloaded])
        assert float(cloud_lat.mean()) > float(flat_lat.mean())

    def test_bit_identical_across_pool_kinds(self, spec, result):
        config = InterferenceConfig(bin_seconds=900.0)
        chunked = InterferenceSimulator(spec, TIGHT_CAPACITY, config=config,
                                        max_workers=3, chunk_size=4).run()
        processes = InterferenceSimulator(spec, TIGHT_CAPACITY, config=config,
                                          max_workers=2,
                                          use_processes=True).run()
        for other in (chunked, processes):
            assert other.passes == result.passes
            assert other.converged == result.converged
            assert np.array_equal(other.table.service_ms,
                                  result.table.service_ms)
            assert np.array_equal(other.profile.requests,
                                  result.profile.requests)
            for a, b in zip(result.traces, other.traces):
                assert np.array_equal(a.route, b.route)
                assert np.array_equal(a.latency_ms, b.latency_ms)
                assert np.array_equal(a.wait_ms, b.wait_ms)

    def test_reference_loop_matches_under_frozen_table(self, spec, result):
        aligned = InterferenceSimulator(spec, TIGHT_CAPACITY).spec
        simulator = FleetSimulator(aligned, max_workers=1,
                                   service_table=result.table)
        for user_id in range(6):
            assert_traces_equal(
                simulator.simulate_user(user_id),
                simulate_user_naive(aligned, user_id,
                                    service_table=result.table),
                context=f"user {user_id}")

    def test_run_to_store_persists_events_and_load(self, spec, tmp_path):
        from repro.fleet import queue_summary

        store = ResultStore(tmp_path / "cloud.store")
        simulator = InterferenceSimulator(
            spec, TIGHT_CAPACITY, config=InterferenceConfig(bin_seconds=900.0))
        rows, result = simulator.run_to_store(store)
        assert rows == store.num_rows("fleet_events") \
            + store.num_rows("fleet_load")
        assert store.num_rows("fleet_load") > 0
        # The persisted profile reconstructs the in-memory one exactly.
        rebuilt = LoadProfile.from_store(
            store, simulator.spec.regions, spec.horizon_s, 900.0)
        assert np.array_equal(rebuilt.requests, result.profile.requests)
        # Conservation, audited externally against the streamed count.
        assert result.arrived == store.num_rows("fleet_events")
        summary = queue_summary(store, expected_arrived=result.arrived)
        assert summary["conserved"]
        assert summary["arrived"] == store.num_rows("fleet_events")
        # And the load report serves from the same rows.
        report = load_report(store)
        assert sum(r["requests"] for r in report) \
            == result.profile.total_requests

    def test_store_time_bin_query_matches_profile(self, spec, tmp_path):
        """Query.bin over persisted events reproduces the load grid."""
        store = ResultStore(tmp_path / "bins.store")
        simulator = InterferenceSimulator(
            spec, TIGHT_CAPACITY, config=InterferenceConfig(bin_seconds=900.0))
        _, result = simulator.run_to_store(store)
        grouped = (store.query("fleet_events")
                   .where(target="cloud")
                   .bin("time_s", 900.0)
                   .group_by("region", "cloud_api", "time_s_bin")
                   .agg(requests=("latency_ms", "count"))
                   .aggregate())
        profile = result.profile
        assert grouped, "congested run should offload"
        total = 0
        for row in grouped:
            r = profile.regions.index(row["region"])
            a = profile.apis.index(row["cloud_api"])
            assert profile.requests[r, a, int(row["time_s_bin"])] \
                == row["requests"]
            total += int(row["requests"])
        assert total == profile.total_requests

    def test_config_validation(self):
        with pytest.raises(ValueError):
            InterferenceConfig(bin_seconds=0.0)
        with pytest.raises(ValueError):
            InterferenceConfig(damping=0.0)
        with pytest.raises(ValueError):
            InterferenceConfig(max_passes=0)
        with pytest.raises(ValueError):
            InterferenceConfig(tolerance_ms=-1.0)
