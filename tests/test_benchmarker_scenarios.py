"""Unit tests for the benchmark workflow orchestration and Table 4 scenarios."""

import pytest

from repro.core.benchmarker import BenchmarkJob, DeviceBenchmarker
from repro.core.scenarios import (
    REFERENCE_BATTERY,
    STANDARD_SCENARIOS,
    run_scenario,
    summarize,
)
from repro.devices.device import device_by_name
from repro.devices.usb_control import UsbSwitch
from repro.dnn.zoo import autocomplete_lstm, blazeface, hair_segmentation, sound_recognition, unet_lite
from repro.runtime import Backend


class TestDeviceBenchmarker:
    def test_workflow_on_board_controls_usb_power(self):
        switch = UsbSwitch()
        benchmarker = DeviceBenchmarker(device_by_name("Q845"), usb_switch=switch)
        record = benchmarker.run_job(BenchmarkJob(graph=blazeface(), num_inferences=3))
        assert ("power_off", 0) in switch.events
        assert ("power_on", 0) in switch.events
        assert "usb_power_off" in record.workflow_events
        assert "notify_server_via_netcat" in record.workflow_events
        assert record.power_trace is not None
        assert record.measured_energy_mj > 0

    def test_workflow_on_phone_has_no_power_trace(self):
        benchmarker = DeviceBenchmarker(device_by_name("A20"))
        record = benchmarker.run_job(BenchmarkJob(graph=blazeface(), num_inferences=3))
        assert record.power_trace is None
        assert record.measured_energy_mj is None
        assert "usb_power_off" not in record.workflow_events

    def test_measured_energy_close_to_model_energy(self):
        benchmarker = DeviceBenchmarker(device_by_name("Q845"))
        job = BenchmarkJob(graph=blazeface(), num_inferences=5, inter_inference_sleep_ms=10)
        record = benchmarker.run_job(job)
        modeled_total = record.result.energy_mj * job.num_inferences
        # The trace includes idle gaps between inferences, so it is a bit higher.
        assert record.measured_energy_mj >= modeled_total * 0.8

    def test_run_suite_skips_unsupported_models(self):
        benchmarker = DeviceBenchmarker(device_by_name("Q845"))
        records = benchmarker.run_suite([blazeface(), autocomplete_lstm()],
                                        backend=Backend.SNPE_DSP, num_inferences=2)
        assert len(records) == 1

    def test_workflow_event_order(self):
        benchmarker = DeviceBenchmarker(device_by_name("Q888"))
        record = benchmarker.run_job(BenchmarkJob(graph=blazeface(), num_inferences=2))
        events = list(record.workflow_events)
        assert events.index("adb_push_dependencies") < events.index("usb_power_off")
        assert events.index("usb_power_off") < events.index("usb_power_on")
        assert events[-1] == "cleanup"


class TestScenarios:
    def test_standard_scenarios_cover_three_modalities(self):
        names = {scenario.name for scenario in STANDARD_SCENARIOS}
        assert names == {"Sound R.", "Typing", "Segm."}

    def test_scenario_applicability(self):
        sound = STANDARD_SCENARIOS[0]
        assert sound.applies_to("sound recognition", sound_recognition().modality)
        assert not sound.applies_to("auto-complete", autocomplete_lstm().modality)

    def test_segmentation_dominates_battery_cost(self):
        """Table 4: an hour of segmentation costs orders of magnitude more
        battery than a day of typing."""
        device = device_by_name("Q845")
        typing = run_scenario(STANDARD_SCENARIOS[1], device,
                              [(autocomplete_lstm(), "auto-complete")])
        segmentation = run_scenario(STANDARD_SCENARIOS[2], device,
                                    [(hair_segmentation(resolution=256), "semantic segmentation")])
        assert typing and segmentation
        assert segmentation[0].battery_discharge_mah > 100 * typing[0].battery_discharge_mah

    def test_segmentation_can_drain_most_of_the_battery(self):
        device = device_by_name("Q845")
        results = run_scenario(
            STANDARD_SCENARIOS[2], device,
            [(unet_lite(resolution=256), "semantic segmentation")])
        assert results[0].battery_fraction > 0.2

    def test_typing_cost_is_negligible(self):
        device = device_by_name("Q888")
        results = run_scenario(STANDARD_SCENARIOS[1], device,
                               [(autocomplete_lstm(), "auto-complete")])
        assert results[0].battery_discharge_mah < 5.0

    def test_sound_recognition_inference_count_depends_on_input(self):
        device = device_by_name("Q845")
        long_window = run_scenario(STANDARD_SCENARIOS[0], device,
                                   [(sound_recognition(frames=96), "sound recognition")])
        short_window = run_scenario(STANDARD_SCENARIOS[0], device,
                                    [(sound_recognition(frames=48), "sound recognition")])
        assert short_window[0].inference_count > long_window[0].inference_count

    def test_summary_statistics(self):
        device = device_by_name("Q845")
        results = run_scenario(
            STANDARD_SCENARIOS[2], device,
            [(hair_segmentation(resolution=256), "semantic segmentation"),
             (unet_lite(resolution=144, base_filters=16), "semantic segmentation")])
        summary = summarize(results)
        assert summary is not None
        assert summary.model_count == 2
        assert summary.min_mah <= summary.median_mah <= summary.max_mah
        assert summarize([]) is None

    def test_reference_battery_matches_common_capacity(self):
        assert REFERENCE_BATTERY.capacity_mah == 4000
