"""Unit tests for the synthetic Play Store and the app population generator."""

import pytest

from repro.android.appgen import AppGenerator, GeneratorConfig, ModelPool
from repro.android.playstore import CATEGORIES, PlayStore, PlayStoreListing, StoreSnapshot


class TestPlayStore:
    def test_listing_validation(self):
        with pytest.raises(ValueError):
            PlayStoreListing(package="a", title="A", category="NOT_A_CATEGORY",
                             downloads=1, rating=4.0, num_reviews=1)
        with pytest.raises(ValueError):
            PlayStoreListing(package="a", title="A", category="TOOLS",
                             downloads=1, rating=9.0, num_reviews=1)

    def test_snapshot_rejects_duplicates(self):
        snapshot = StoreSnapshot(label="x", date="2021-01-01")
        listing = PlayStoreListing(package="com.a", title="A", category="TOOLS",
                                   downloads=10, rating=4.0, num_reviews=5)
        snapshot.add_app(listing, lambda: None)
        with pytest.raises(ValueError):
            snapshot.add_app(listing, lambda: None)

    def test_top_chart_sorted_and_capped(self, store):
        top = store.top_free_apps("2021", "COMMUNICATION", limit=10)
        downloads = [listing.downloads for listing in top]
        assert downloads == sorted(downloads, reverse=True)
        assert len(top) <= 10

    def test_unknown_snapshot_and_package(self, store):
        with pytest.raises(KeyError):
            store.snapshot("2019")
        with pytest.raises(KeyError):
            store.download("2021", "com.not.an.app")

    def test_unknown_category_rejected(self, store):
        with pytest.raises(ValueError):
            store.top_free_apps("2021", "NOT_A_CATEGORY")

    def test_download_builds_package(self, store):
        snapshot = store.snapshot("2021")
        package_name = next(iter(snapshot.listings))
        package = store.download("2021", package_name)
        assert package.package_name == package_name
        assert package.apk_size > 0


class TestGeneratorConfig:
    def test_2021_targets_match_table2(self):
        config = GeneratorConfig.snapshot_2021()
        assert config.total_apps == 16653
        assert config.apps_with_frameworks == 377
        assert config.apps_with_models == 342
        assert config.total_models == 1666
        assert config.unique_models == 318

    def test_2020_targets_match_table2(self):
        config = GeneratorConfig.snapshot_2020()
        assert config.total_apps == 16964
        assert config.total_models == 821
        assert config.unique_models == 129

    def test_scaled_counts(self):
        config = GeneratorConfig.snapshot_2021(scale=0.1)
        assert config.scaled(1000) == 100
        assert config.scaled(3, minimum=1) >= 1
        full = GeneratorConfig.snapshot_2021(scale=1.0)
        assert full.scaled(1000) == 1000


class TestModelPool:
    def test_specs_are_deterministic(self):
        pool_a = ModelPool(pool_seed=7)
        pool_b = ModelPool(pool_seed=7)
        assert pool_a.spec(5) == pool_b.spec(5)

    def test_different_indices_differ(self):
        pool = ModelPool(pool_seed=7)
        assert pool.spec(1) != pool.spec(2)

    def test_artifacts_are_cached_and_stable(self):
        pool = ModelPool(pool_seed=7)
        first = pool.artifact(3)
        second = pool.artifact(3)
        assert first is second
        assert ModelPool(pool_seed=7).artifact(3).checksum() == first.checksum()

    def test_finetuned_specs_reference_earlier_entries(self):
        pool = ModelPool(pool_seed=7)
        derived = [pool.spec(i) for i in range(150) if pool.spec(i).finetuned_from is not None]
        assert derived, "expected some fine-tuned pool entries"
        assert all(spec.finetuned_from < spec.pool_index for spec in derived)

    def test_graph_framework_matches_spec(self):
        pool = ModelPool(pool_seed=7)
        spec = pool.spec(4)
        assert pool.graph(4).framework == spec.framework


class TestGeneratedSnapshot:
    def test_snapshot_sizes(self, store):
        snapshot = store.snapshot("2021")
        config = GeneratorConfig.snapshot_2021(scale=0.03)
        assert snapshot.total_apps == pytest.approx(config.scaled(config.total_apps), rel=0.05)

    def test_categories_populated(self, store):
        assert len(store.snapshot("2021").categories()) > 10

    def test_ml_apps_contain_model_assets(self, store):
        snapshot = store.snapshot("2021")
        ml_packages = [p for p in snapshot.listings if ".ml" in p]
        assert ml_packages
        package = store.download("2021", ml_packages[0])
        assert any("models/" in path for path in package.all_files())

    def test_framework_only_apps_have_libraries_but_invalid_models(self, store):
        snapshot = store.snapshot("2021")
        lib_packages = [p for p in snapshot.listings if ".lib" in p]
        assert lib_packages
        package = store.download("2021", lib_packages[0])
        files = package.all_files()
        assert any(path.endswith(".so") for path in files)
        assert any("encrypted_model" in path for path in files)

    def test_snapshots_share_pool_models(self, store, gauge):
        """Some unique models must persist across snapshots for Fig. 5 to be meaningful."""
        analysis_2020 = gauge.analyze_snapshot("2020")
        analysis_2021 = gauge.analyze_snapshot("2021")
        shared = analysis_2020.unique_model_checksums & analysis_2021.unique_model_checksums
        assert shared
