"""Integration tests for the end-to-end pipeline and the report builders."""

import pytest

from repro.core import reports
from repro.core.pipeline import GaugeNN, PipelineConfig
from repro.devices.device import device_by_name
from repro.runtime import Backend, Executor


class TestPipeline:
    def test_table2_shape(self, analysis_2021):
        row = reports.dataset_table(analysis_2021)
        assert row.total_apps > 0
        assert row.total_apps > row.apps_with_frameworks >= row.apps_with_models > 0
        assert row.total_models >= row.unique_models > 0
        assert 0 < row.apps_with_models_pct < 15
        assert 0 < row.unique_models_pct < 100

    def test_2020_snapshot_is_smaller(self, analysis_2020, analysis_2021):
        assert analysis_2020.total_models < analysis_2021.total_models
        assert analysis_2020.apps_with_models < analysis_2021.apps_with_models

    def test_framework_distribution_matches_paper_ordering(self, analysis_2021):
        by_framework = analysis_2021.models_by_framework()
        assert by_framework["tflite"] == max(by_framework.values())
        assert by_framework.get("caffe", 0) >= by_framework.get("ncnn", 0)

    def test_vision_dominates_tasks(self, analysis_2021):
        """Table 3: > 89% of identified models are vision models."""
        from repro.dnn.graph import Modality

        records = analysis_2021.models
        vision = sum(1 for r in records if r.modality is Modality.IMAGE)
        assert vision / len(records) > 0.8

    def test_accelerator_traces_are_rare(self, analysis_2021):
        """Sec. 6.3: only a minority of apps carry NNAPI/XNNPACK/SNPE traces."""
        ml_apps = [app for app in analysis_2021.apps if app.has_models]
        with_accel = [app for app in ml_apps if app.accelerators]
        assert len(with_accel) < len(ml_apps)

    def test_max_apps_cap(self, store):
        gauge = GaugeNN(store, PipelineConfig(max_apps=20))
        analysis = gauge.analyze_snapshot("2021")
        assert analysis.total_apps == 20

    def test_category_restriction(self, store):
        gauge = GaugeNN(store, PipelineConfig(categories=("COMMUNICATION",)))
        analysis = gauge.analyze_snapshot("2021")
        assert {app.category for app in analysis.apps} == {"COMMUNICATION"}

    def test_analyze_all_snapshots(self, store):
        gauge = GaugeNN(store, PipelineConfig(max_apps=10))
        all_analyses = gauge.analyze_all_snapshots()
        assert set(all_analyses) == {"2020", "2021"}

    def test_unique_graph_helpers(self, analysis_2021):
        graphs = GaugeNN.unique_graphs(analysis_2021)
        pairs = GaugeNN.graphs_with_tasks(analysis_2021)
        assert len(graphs) == analysis_2021.unique_models
        assert len(pairs) == len(graphs)
        assert all(isinstance(task, str) for _, task in pairs)


class TestReports:
    def test_fig4_report(self, analysis_2021):
        table = reports.models_per_framework_and_category(analysis_2021)
        assert table
        totals = [sum(frameworks.values()) for frameworks in table.values()]
        assert totals == sorted(totals, reverse=True)
        assert sum(totals) == analysis_2021.total_models

    def test_fig4_category_cutoff(self, analysis_2021):
        table = reports.models_per_framework_and_category(analysis_2021,
                                                          min_models_per_category=3)
        assert all(sum(frameworks.values()) >= 3 for frameworks in table.values())

    def test_table3_report(self, analysis_2021):
        table = reports.task_classification_table(analysis_2021)
        assert "image" in table
        total = sum(count for tasks in table.values() for count in tasks.values())
        assert total == analysis_2021.total_models

    def test_fig6_layer_composition(self, analysis_2021):
        composition = reports.layer_composition_by_modality(analysis_2021)
        assert "image" in composition
        image = composition["image"]
        assert sum(image.values()) == pytest.approx(100.0, abs=1.0)
        conv_share = image.get("conv", 0.0) + image.get("depth_conv", 0.0)
        assert conv_share > 20.0

    def test_fig7_flops_and_parameters(self, analysis_2021):
        table = reports.flops_and_parameters_by_task(analysis_2021)
        assert table
        for row in table.values():
            assert row["flops_min"] <= row["flops_median"] <= row["flops_max"]
            assert row["parameters_min"] <= row["parameters_median"] <= row["parameters_max"]

    def test_fig8_and_fig9_reports(self, analysis_2021):
        graphs = GaugeNN.unique_graphs(analysis_2021)[:5]
        results = {
            name: Executor(device_by_name(name), seed=0).run_many(graphs, Backend.CPU,
                                                                  num_inferences=2)
            for name in ("A20", "S21")
        }
        points = reports.latency_vs_flops(results["S21"])
        assert len(points) == len(results["S21"])
        ecdfs = reports.latency_ecdf_by_device(results)
        assert ecdfs["A20"].median > ecdfs["S21"].median

    def test_fig10_energy_distributions(self, analysis_2021):
        graphs = GaugeNN.unique_graphs(analysis_2021)[:5]
        results = {
            name: Executor(device_by_name(name), seed=0).run_many(graphs, Backend.CPU,
                                                                  num_inferences=2)
            for name in ("Q845", "Q888")
        }
        table = reports.energy_distributions(results)
        assert table["Q888"]["power_median_w"] > table["Q845"]["power_median_w"]
        assert table["Q845"]["efficiency_median_mflops_per_sw"] > 0

    def test_fig15_cloud_usage(self, analysis_2021):
        usage = reports.cloud_api_usage(analysis_2021)
        assert usage
        counts = [int(entry["apps"]) for entry in usage.values()]
        assert counts == sorted(counts, reverse=True)
        providers = {entry["provider"] for entry in usage.values()}
        assert providers <= {"Google", "AWS"}

    def test_google_leads_aws(self, analysis_2021):
        """Fig. 15 / Sec. 6.4: Google cloud APIs dominate AWS."""
        google = sum(1 for app in analysis_2021.apps_using_cloud()
                     if "Google" in app.cloud_providers)
        aws = sum(1 for app in analysis_2021.apps_using_cloud()
                  if "AWS" in app.cloud_providers)
        assert google > aws
