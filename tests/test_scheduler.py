"""Unit tests for the CPU scheduling model (the Fig. 12 effects)."""

import pytest

from repro.devices.device import device_by_name
from repro.devices.scheduler import CpuScheduler, ThreadConfig


class TestThreadConfig:
    def test_labels(self):
        assert ThreadConfig(4).label == "4"
        assert ThreadConfig(4, 2).label == "4a2"

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreadConfig(0)
        with pytest.raises(ValueError):
            ThreadConfig(2, 0)


class TestOptimalThreadCounts:
    """Sec. 6.2: 'A20, A70 and S21 performing better with 4, 2 and 4 threads'."""

    @pytest.mark.parametrize("device_name,expected_best", [
        ("A20", 4), ("A70", 2), ("S21", 4), ("Q845", 4), ("Q855", 4), ("Q888", 4),
    ])
    def test_best_plain_thread_count(self, device_name, expected_best):
        scheduler = CpuScheduler(device_by_name(device_name).soc)
        sweep = {t: scheduler.effective_gflops(ThreadConfig(t)) for t in (1, 2, 4, 8)}
        assert max(sweep, key=sweep.get) == expected_best

    @pytest.mark.parametrize("device_name", ["A20", "A70", "S21", "Q845", "Q855", "Q888"])
    def test_eight_threads_degrade(self, device_name):
        """'the 8-threaded performance drops significantly across devices'."""
        scheduler = CpuScheduler(device_by_name(device_name).soc)
        best_low = max(scheduler.effective_gflops(ThreadConfig(t)) for t in (2, 4))
        assert scheduler.effective_gflops(ThreadConfig(8)) < best_low


class TestAffinity:
    @pytest.mark.parametrize("device_name", ["A20", "A70", "S21"])
    def test_oversubscription_hurts(self, device_name):
        """'4a2 and 8a4 result in significant performance degradation'."""
        scheduler = CpuScheduler(device_by_name(device_name).soc)
        assert scheduler.effective_gflops(ThreadConfig(4, 2)) < \
            scheduler.effective_gflops(ThreadConfig(2))
        assert scheduler.effective_gflops(ThreadConfig(8, 4)) < \
            scheduler.effective_gflops(ThreadConfig(4))

    @pytest.mark.parametrize("device_name", ["A20", "A70", "S21"])
    def test_pinning_gives_no_gain(self, device_name):
        """'setting the affinity to the same number of top cores does not yield gains'."""
        scheduler = CpuScheduler(device_by_name(device_name).soc)
        assert scheduler.effective_gflops(ThreadConfig(4, 4)) <= \
            scheduler.effective_gflops(ThreadConfig(4))
        assert scheduler.effective_gflops(ThreadConfig(2, 2)) <= \
            scheduler.effective_gflops(ThreadConfig(2))


class TestOversubscriptionEdgeCases:
    """Stateful/repeated-use behaviour around oversubscribed configurations."""

    def test_repeated_calls_are_pure(self):
        """The scheduler holds no hidden state: every repeated evaluation of
        the same configuration returns the identical value (the property the
        fleet simulator's cached nominal latencies rely on)."""
        scheduler = CpuScheduler(device_by_name("A20").soc)
        configs = [ThreadConfig(t, a) for t in (1, 2, 4, 8, 16)
                   for a in (None, 1, 2, 4, 8)]
        first = [scheduler.effective_gflops(c) for c in configs]
        for _ in range(3):
            assert [scheduler.effective_gflops(c) for c in configs] == first

    def test_more_threads_than_cores_unpinned(self):
        """Worker counts past the core count stop adding throughput."""
        scheduler = CpuScheduler(device_by_name("S21").soc)
        at_cores = scheduler.effective_gflops(ThreadConfig(8))
        beyond = scheduler.effective_gflops(ThreadConfig(16))
        assert beyond <= at_cores * 1.01

    def test_extreme_oversubscription_on_one_core(self):
        scheduler = CpuScheduler(device_by_name("A70").soc)
        pinned_one = scheduler.effective_gflops(ThreadConfig(1, 1))
        crowded = scheduler.effective_gflops(ThreadConfig(8, 1))
        assert crowded < pinned_one
        assert crowded > 0.0

    def test_affinity_beyond_core_count_caps_at_cores(self):
        scheduler = CpuScheduler(device_by_name("S21").soc)
        assert scheduler.effective_gflops(ThreadConfig(4, 64)) == \
            scheduler.effective_gflops(ThreadConfig(4, 8))

    def test_best_configuration_avoids_oversubscription(self):
        scheduler = CpuScheduler(device_by_name("A20").soc)
        candidates = [ThreadConfig(2), ThreadConfig(8, 2), ThreadConfig(16, 1)]
        assert scheduler.best_configuration(candidates) == ThreadConfig(2)


class TestTuningHeadroom:
    def test_best_configuration_worth_up_to_2x(self):
        """Selecting the optimal thread count per device is worth a large factor
        versus the worst naive choice (the paper reports up to ~2x)."""
        for device_name in ("A20", "A70", "S21"):
            scheduler = CpuScheduler(device_by_name(device_name).soc)
            sweep = [scheduler.effective_gflops(ThreadConfig(t)) for t in (1, 2, 4, 8)]
            assert max(sweep) / min(sweep) >= 1.5

    def test_best_configuration_helper(self):
        scheduler = CpuScheduler(device_by_name("A70").soc)
        assert scheduler.best_configuration().threads == 2

    def test_core_speeds_sorted(self):
        scheduler = CpuScheduler(device_by_name("S21").soc)
        speeds = scheduler.core_speeds()
        assert speeds == sorted(speeds, reverse=True)
        assert len(speeds) == 8
