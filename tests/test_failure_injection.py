"""Robustness tests: corrupted inputs, truncated files and degenerate stores.

The real-world pipeline has to survive malformed APK contents (the paper's
obfuscated/encrypted models), so the reproduction's retrieval stages must
degrade gracefully rather than crash on bad bytes.
"""

import pytest

from repro.android.apk import ApkBuilder
from repro.android.appgen import AppGenerator, GeneratorConfig
from repro.android.dex import DexFile
from repro.android.manifest import AndroidManifest
from repro.android.playstore import PlayStore, StoreSnapshot
from repro.core.app_analysis import AppAnalyzer
from repro.core.extractor import ModelExtractor
from repro.core.pipeline import GaugeNN
from repro.core.validator import ModelValidator
from repro.dnn.zoo import blazeface
from repro.formats.payload import decode_graph, encode_graph
from repro.formats.serialize import deserialize_file, serialize_model
from repro.formats import tflite


def _apk_with_assets(assets: dict[str, bytes]):
    builder = ApkBuilder(AndroidManifest(package="com.corrupt.app"), DexFile())
    for path, data in assets.items():
        builder.add_asset(path, data)
    return builder.build()


class TestCorruptedModelFiles:
    def test_truncated_tflite_rejected_by_validation(self):
        artifact = tflite.write(blazeface(weight_seed=1))
        data = artifact.files[artifact.primary]
        package = _apk_with_assets({"models/truncated.tflite": data[:6]})
        extraction = ModelExtractor().extract(package)
        assert ModelValidator().validate_many(extraction.candidate_groups) == []

    def test_corrupted_payload_rejected(self):
        artifact = tflite.write(blazeface(weight_seed=1))
        data = bytearray(artifact.files[artifact.primary])
        # Keep the TFL3 signature but destroy the payload header.
        data[8:16] = b"\x00" * 8
        package = _apk_with_assets({"models/corrupt.tflite": bytes(data)})
        extraction = ModelExtractor().extract(package)
        assert ModelValidator().validate_many(extraction.candidate_groups) == []

    def test_signature_only_file_fails_parse(self):
        with pytest.raises(ValueError):
            tflite.read(b"\x08\x00\x00\x00TFL3not-a-real-payload")

    def test_random_bytes_not_a_model(self):
        with pytest.raises(ValueError):
            deserialize_file(bytes(range(256)) * 4)

    def test_decode_graph_requires_magic(self):
        with pytest.raises(ValueError):
            decode_graph(b"NOTMAGIC" + b"\x00" * 16)

    def test_encode_without_weights_still_round_trips(self):
        graph = blazeface(weight_seed=3)
        restored = decode_graph(encode_graph(graph, include_weights=False))
        assert restored.num_layers == graph.num_layers
        assert restored.total_parameters() == graph.total_parameters()


class TestMalformedAppCode:
    def test_analyzer_survives_missing_dex(self):
        analysis = AppAnalyzer().analyze(None, [])
        assert not analysis.frameworks
        assert not analysis.uses_cloud_ml

    def test_analyzer_rejects_garbage_dex(self):
        with pytest.raises(ValueError):
            AppAnalyzer().analyze(b"garbage-not-a-dex", [])

    def test_extractor_handles_app_without_code_or_models(self):
        builder = ApkBuilder(AndroidManifest(package="com.empty.app"))
        extraction = ModelExtractor().extract(builder.build())
        assert extraction.candidate_count == 0
        assert extraction.dex_data is not None


class TestDegenerateStores:
    def test_empty_snapshot_analysis(self):
        store = PlayStore([StoreSnapshot(label="empty", date="2021-01-01")])
        analysis = GaugeNN(store).analyze_snapshot("empty")
        assert analysis.total_apps == 0
        assert analysis.total_models == 0
        assert analysis.unique_models == 0

    def test_tiny_scale_generation_still_valid(self):
        snapshot = AppGenerator(GeneratorConfig.snapshot_2021(scale=0.005)).generate()
        store = PlayStore([snapshot])
        analysis = GaugeNN(store).analyze_snapshot("2021")
        assert analysis.total_models >= analysis.unique_models > 0
        assert analysis.apps_with_models <= analysis.apps_with_frameworks

    def test_serializer_rejects_unknown_framework(self):
        with pytest.raises(ValueError):
            serialize_model(blazeface(), "armnn")
