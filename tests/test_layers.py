"""Unit tests for layer definitions and FLOP/parameter accounting."""

import pytest

from repro.dnn.layers import Layer, LayerCategory, OpType
from repro.dnn.tensor import DType, TensorSpec, WeightTensor


def _conv_layer(out_hw=112, in_channels=3, out_channels=32, kernel=3):
    return Layer(
        name="conv1",
        op=OpType.CONV2D,
        inputs=("input_0",),
        output_spec=TensorSpec((1, out_hw, out_hw, out_channels)),
        weights=(
            WeightTensor((kernel, kernel, in_channels, out_channels), name="conv1/kernel"),
            WeightTensor((out_channels,), name="conv1/bias"),
        ),
        attrs={"kernel_size": (kernel, kernel), "in_channels": in_channels,
               "out_channels": out_channels},
    )


class TestLayerAccounting:
    def test_conv_macs_formula(self):
        layer = _conv_layer()
        expected = 1 * 112 * 112 * 32 * 3 * 3 * 3
        assert layer.macs() == expected
        assert layer.flops() == 2 * expected

    def test_depthwise_macs(self):
        layer = Layer(
            name="dw",
            op=OpType.DEPTHWISE_CONV2D,
            output_spec=TensorSpec((1, 56, 56, 32)),
            attrs={"kernel_size": (3, 3), "in_channels": 32},
        )
        assert layer.macs() == 56 * 56 * 32 * 9

    def test_dense_macs(self):
        layer = Layer(
            name="fc",
            op=OpType.DENSE,
            output_spec=TensorSpec((1, 1000)),
            attrs={"in_features": 1280},
        )
        assert layer.macs() == 1000 * 1280

    def test_lstm_macs_scale_with_time_steps(self):
        short = Layer(name="l1", op=OpType.LSTM, output_spec=TensorSpec((1, 128)),
                      attrs={"hidden_size": 128, "input_size": 64, "time_steps": 1})
        long = Layer(name="l2", op=OpType.LSTM, output_spec=TensorSpec((1, 128)),
                     attrs={"hidden_size": 128, "input_size": 64, "time_steps": 10})
        assert long.macs() == 10 * short.macs()

    def test_activation_flops_are_elementwise(self):
        layer = Layer(name="relu", op=OpType.RELU, output_spec=TensorSpec((1, 10, 10, 8)))
        assert layer.flops() == 800
        assert layer.macs() == 0

    def test_data_movement_ops_have_zero_flops(self):
        layer = Layer(name="reshape", op=OpType.RESHAPE, output_spec=TensorSpec((1, 100)))
        assert layer.flops() == 0

    def test_parameter_count(self):
        layer = _conv_layer()
        assert layer.num_parameters == 3 * 3 * 3 * 32 + 32

    def test_weight_bytes_depend_on_dtype(self):
        layer = _conv_layer()
        int8_layer = Layer(
            name=layer.name, op=layer.op, output_spec=layer.output_spec,
            weights=tuple(w.with_dtype(DType.INT8) for w in layer.weights),
            attrs=layer.attrs,
        )
        assert int8_layer.weight_bytes * 4 == layer.weight_bytes


class TestLayerCategories:
    @pytest.mark.parametrize("op,category", [
        (OpType.CONV2D, LayerCategory.CONV),
        (OpType.DEPTHWISE_CONV2D, LayerCategory.DEPTH_CONV),
        (OpType.DENSE, LayerCategory.DENSE),
        (OpType.LSTM, LayerCategory.DENSE),
        (OpType.RELU6, LayerCategory.ACTIVATION),
        (OpType.ADD, LayerCategory.MATH),
        (OpType.MAX_POOL, LayerCategory.POOLING),
        (OpType.QUANTIZE, LayerCategory.QUANT),
        (OpType.DEQUANTIZE, LayerCategory.QUANT),
        (OpType.RESIZE_BILINEAR, LayerCategory.RESIZE),
        (OpType.SLICE, LayerCategory.SLICE),
        (OpType.CONCAT, LayerCategory.OTHER),
    ])
    def test_fig6_category_mapping(self, op, category):
        layer = Layer(name="x", op=op, output_spec=TensorSpec((1, 4)))
        assert layer.category is category

    def test_compute_flag(self):
        assert _conv_layer().is_compute
        relu = Layer(name="r", op=OpType.RELU, output_spec=TensorSpec((1, 4)))
        assert not relu.is_compute


class TestLayerIdentity:
    def test_weights_checksum_changes_with_seed(self):
        a = _conv_layer()
        b = Layer(name=a.name, op=a.op, output_spec=a.output_spec,
                  weights=tuple(w.with_seed(99) for w in a.weights), attrs=a.attrs)
        assert a.weights_checksum() != b.weights_checksum()

    def test_weights_checksum_empty_without_weights(self):
        relu = Layer(name="r", op=OpType.RELU, output_spec=TensorSpec((1, 4)))
        assert relu.weights_checksum() == ""

    def test_structural_signature_ignores_weights(self):
        a = _conv_layer()
        b = Layer(name=a.name, op=a.op, output_spec=a.output_spec,
                  weights=tuple(w.with_seed(99) for w in a.weights), attrs=a.attrs)
        assert a.structural_signature() == b.structural_signature()

    def test_rename_preserves_structure(self):
        layer = _conv_layer()
        renamed = layer.rename("conv_other")
        assert renamed.name == "conv_other"
        assert renamed.op == layer.op
        assert renamed.num_parameters == layer.num_parameters

    def test_is_quantized(self):
        layer = _conv_layer()
        assert not layer.is_quantized
        quantized = Layer(name="q", op=OpType.CONV2D, output_spec=layer.output_spec,
                          weights=tuple(w.with_dtype(DType.INT8) for w in layer.weights),
                          attrs=layer.attrs)
        assert quantized.is_quantized

    def test_requires_name(self):
        with pytest.raises(ValueError):
            Layer(name="", op=OpType.RELU)
