"""Unit tests for the device substrate: SoCs, fleet, battery, thermal, power, USB."""

import pytest

from repro.devices import (
    Battery,
    CpuScheduler,
    DEV_BOARDS,
    DEVICE_FLEET,
    PHONES,
    PowerMonitor,
    ThermalModel,
    ThreadConfig,
    UsbSwitch,
    device_by_name,
)
from repro.devices.soc import SOC_CATALOG, soc_by_name


class TestSoc:
    def test_catalog_covers_table1(self):
        assert set(SOC_CATALOG) == {
            "Exynos 7884", "Snapdragon 675", "Snapdragon 845",
            "Snapdragon 855", "Snapdragon 888",
        }

    def test_unknown_soc(self):
        with pytest.raises(KeyError):
            soc_by_name("Snapdragon 1")

    def test_core_counts(self):
        assert soc_by_name("Snapdragon 888").total_cores == 8
        assert soc_by_name("Snapdragon 888").big_cores == 4
        assert soc_by_name("Exynos 7884").total_cores == 8

    def test_generation_ordering(self):
        """Successive Snapdragon flagships gain peak CPU throughput."""
        q845 = soc_by_name("Snapdragon 845")
        q855 = soc_by_name("Snapdragon 855")
        q888 = soc_by_name("Snapdragon 888")
        assert q845.peak_cpu_gflops < q855.peak_cpu_gflops < q888.peak_cpu_gflops
        assert q845.memory_bandwidth_gbps < q888.memory_bandwidth_gbps

    def test_accelerator_lookup(self):
        soc = soc_by_name("Snapdragon 845")
        assert soc.accelerator("gpu") is soc.gpu
        assert soc.accelerator("dsp") is soc.dsp
        assert soc.accelerator("npu") is None
        assert soc_by_name("Exynos 7884").dsp is None

    def test_clusters_fastest_first(self):
        soc = soc_by_name("Snapdragon 888")
        speeds = [c.per_core_gflops for c in soc.cores_fastest_first()]
        assert speeds == sorted(speeds, reverse=True)


class TestDeviceFleet:
    def test_table1_fleet(self):
        assert [d.name for d in PHONES] == ["A20", "A70", "S21"]
        assert [d.name for d in DEV_BOARDS] == ["Q845", "Q855", "Q888"]
        assert len(DEVICE_FLEET) == 6

    def test_table1_specs(self):
        assert device_by_name("A20").ram_gb == 4
        assert device_by_name("A20").battery_capacity_mah == 4000
        assert device_by_name("A70").battery_capacity_mah == 4500
        assert device_by_name("Q855").battery_capacity_mah is None

    def test_tiers(self):
        assert device_by_name("A20").tier == "low"
        assert device_by_name("A70").tier == "mid"
        assert device_by_name("S21").tier == "high"

    def test_only_boards_support_power_measurement(self):
        assert all(d.supports_power_measurement for d in DEV_BOARDS)
        assert not any(d.supports_power_measurement for d in PHONES)

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            device_by_name("Pixel 6")

    def test_s21_and_q888_share_soc(self):
        assert device_by_name("S21").soc.name == device_by_name("Q888").soc.name
        assert device_by_name("S21").vendor_factor < device_by_name("Q888").vendor_factor


class TestBattery:
    def test_capacity_and_discharge(self):
        battery = Battery(capacity_mah=4000, voltage=3.85)
        assert battery.capacity_joules == pytest.approx(4.0 * 3600 * 3.85)
        one_percent = battery.capacity_joules / 100
        assert battery.discharge_mah(one_percent) == pytest.approx(40.0)
        assert battery.discharge_fraction(one_percent) == pytest.approx(0.01)

    def test_discharge_fraction_caps_at_one(self):
        battery = Battery(capacity_mah=1000)
        assert battery.discharge_fraction(battery.capacity_joules * 3) == 1.0

    def test_runtime_hours(self):
        battery = Battery(capacity_mah=4000, voltage=3.85)
        assert battery.hours_of_runtime(battery.capacity_joules / 3600) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(capacity_mah=0)
        with pytest.raises(ValueError):
            Battery(capacity_mah=100).discharge_mah(-1.0)


class TestBatteryState:
    def test_multi_day_discharge_accounting(self):
        """Repeated stateful draws accumulate exactly over days of draws."""
        battery = Battery(capacity_mah=4000, voltage=3.85)
        state = battery.state()
        per_event_mj = 250.0  # a heavy inference
        events_per_day = 2000
        for _ in range(3 * events_per_day):  # three simulated days
            state.drain_mj(per_event_mj)
        expected_mah = battery.discharge_mah(
            per_event_mj / 1e3) * 3 * events_per_day
        assert state.drained_mah == pytest.approx(expected_mah, rel=1e-9)
        assert state.fraction == pytest.approx(
            1.0 - expected_mah / battery.capacity_mah, rel=1e-9)
        assert not state.is_empty

    def test_level_clamps_at_empty_but_drain_log_keeps_counting(self):
        state = Battery(capacity_mah=10, voltage=3.85).state(0.1)
        huge = state.battery.capacity_joules
        state.drain_joules(huge)
        assert state.is_empty
        assert state.level_mah == 0.0
        assert state.fraction == 0.0
        # The accounting still records what the workload asked for.
        assert state.drained_mah == pytest.approx(10.0)
        state.drain_joules(huge)
        assert state.drained_mah == pytest.approx(20.0)

    def test_recharge_and_partial_start(self):
        battery = Battery(capacity_mah=4000)
        state = battery.state(0.5)
        assert state.level_mah == pytest.approx(2000.0)
        state.recharge()
        assert state.fraction == 1.0
        state.recharge(0.25)
        assert state.level_mah == pytest.approx(1000.0)

    def test_validation(self):
        battery = Battery(capacity_mah=100)
        with pytest.raises(ValueError):
            battery.state(1.5)
        with pytest.raises(ValueError):
            battery.state().recharge(-0.1)
        with pytest.raises(ValueError):
            battery.state().drain_joules(-1.0)


class TestThermal:
    def test_throttling_monotone(self):
        model = ThermalModel(throttle_floor=0.8, time_constant_s=60)
        assert model.throttle_factor(0) == pytest.approx(1.0)
        assert model.throttle_factor(30) > model.throttle_factor(600)
        assert model.throttle_factor(1e6) == pytest.approx(0.8, abs=1e-3)

    def test_sustained_latency_increases(self):
        model = ThermalModel(throttle_floor=0.7)
        assert model.sustained_latency_ms(10.0, 600) > 10.0

    def test_boards_throttle_less_than_phones(self):
        board = ThermalModel.for_device(is_dev_board=True, tier="high")
        phone = ThermalModel.for_device(is_dev_board=False, tier="low")
        assert board.throttle_factor(600) > phone.throttle_factor(600)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalModel(throttle_floor=0.0)
        with pytest.raises(ValueError):
            ThermalModel().throttle_factor(-1)

    def test_vectorised_factors_match_scalar(self):
        import numpy as np

        model = ThermalModel(throttle_floor=0.75, time_constant_s=90.0)
        loads = np.array([0.0, 10.0, 120.0, 4000.0])
        vectorised = model.throttle_factors(loads)
        assert list(vectorised) == [model.throttle_factor(v) for v in loads]
        with pytest.raises(ValueError):
            model.throttle_factors(np.array([-1.0]))


class TestThermalState:
    def test_heat_up_matches_continuous_load(self):
        """Back-to-back busy time throttles exactly like the stateless curve."""
        model = ThermalModel(throttle_floor=0.7, time_constant_s=120.0)
        state = model.state()
        for _ in range(10):
            state.heat_up(30.0)
        assert state.throttle_factor == pytest.approx(model.throttle_factor(300.0))
        assert state.latency_ms(10.0) == pytest.approx(
            model.sustained_latency_ms(10.0, 300.0))

    def test_long_idle_gap_cools_back_to_cold(self):
        model = ThermalModel(throttle_floor=0.7, time_constant_s=120.0)
        state = model.state()
        state.heat_up(600.0)
        assert state.throttle_factor < 0.75
        state.cool_down(50 * model.cooldown_tau_s)  # a long shelf gap
        assert state.throttle_factor == pytest.approx(1.0, abs=1e-12)

    def test_cool_down_is_exponential(self):
        model = ThermalModel(throttle_floor=0.8, time_constant_s=100.0,
                             cooldown_time_constant_s=200.0)
        assert model.cooldown_tau_s == 200.0
        state = model.state(heat_seconds=100.0)
        state.cool_down(200.0)
        import math

        assert state.heat_seconds == pytest.approx(100.0 * math.exp(-1.0))

    def test_throttle_floor_clamps_under_unbounded_heat(self):
        model = ThermalModel(throttle_floor=0.7, time_constant_s=60.0)
        state = model.state()
        state.heat_up(1e9)  # weeks of uninterrupted load
        assert state.throttle_factor == pytest.approx(model.throttle_floor)
        assert state.throttle_factor >= model.throttle_floor

    def test_reset_restores_cold_state(self):
        state = ThermalModel().state()
        state.heat_up(500.0)
        state.reset()
        assert state.heat_seconds == 0.0
        assert state.throttle_factor == 1.0

    def test_validation(self):
        state = ThermalModel().state()
        with pytest.raises(ValueError):
            state.heat_up(-1.0)
        with pytest.raises(ValueError):
            state.cool_down(-1.0)
        with pytest.raises(ValueError):
            ThermalModel().state(heat_seconds=-1.0)
        with pytest.raises(ValueError):
            ThermalModel(cooldown_time_constant_s=0.0)


class TestPowerMonitor:
    def test_trace_energy_matches_profile(self):
        monitor = PowerMonitor(sample_rate_hz=1000, noise_watts=0.0)
        trace = monitor.record([(0.5, 2.0), (0.5, 4.0)])
        assert trace.energy_joules() == pytest.approx(3.0, rel=0.02)
        assert trace.average_power_watts() == pytest.approx(3.0, rel=0.02)
        assert trace.peak_power_watts() == pytest.approx(4.0, abs=0.01)

    def test_noise_is_reproducible(self):
        a = PowerMonitor(seed=1).record([(0.01, 3.0)])
        b = PowerMonitor(seed=1).record([(0.01, 3.0)])
        assert a.power_watts == b.power_watts

    def test_short_segments_still_sampled(self):
        monitor = PowerMonitor(sample_rate_hz=100)
        trace = monitor.record([(0.0001, 5.0)])
        assert len(trace.power_watts) == 1

    def test_measure_inference_shape(self):
        trace = PowerMonitor(noise_watts=0.0).measure_inference(
            latency_ms=20.0, active_power_watts=4.0, idle_power_watts=1.0)
        assert trace.peak_power_watts() == pytest.approx(4.0, abs=0.01)
        assert trace.duration_s > 0.1

    def test_rejects_negative_segments(self):
        with pytest.raises(ValueError):
            PowerMonitor().record([(-1.0, 2.0)])


class TestUsbSwitch:
    def test_power_cycle(self):
        switch = UsbSwitch(num_ports=2)
        assert switch.is_powered(0)
        switch.power_off(0)
        assert not switch.is_powered(0)
        assert not switch.has_data(0)
        switch.power_on(0)
        assert switch.is_powered(0)
        assert switch.events == [("power_off", 0), ("power_on", 0)]

    def test_port_range_checked(self):
        switch = UsbSwitch(num_ports=1)
        with pytest.raises(ValueError):
            switch.power_off(3)


class TestRechargeSchedule:
    def test_apply_restores_schedule_level(self):
        from repro.devices.battery import Battery, RechargeSchedule

        battery = Battery(capacity_mah=4000)
        state = battery.state(0.1)
        schedule = RechargeSchedule(start_hour=1.0, duration_h=4.0, level=0.9)
        schedule.apply(state)
        assert state.fraction == pytest.approx(0.9)
        # Draining after a recharge accumulates on top of earlier history.
        state.drain_joules(battery.capacity_joules * 0.5)
        assert state.fraction == pytest.approx(0.4)

    def test_window_end_and_boundaries(self):
        from repro.devices.battery import RechargeSchedule

        schedule = RechargeSchedule(start_hour=22.0, duration_h=6.0)
        # A window crossing midnight completes at 04:00 the next day.
        assert schedule.end_of_day_s == pytest.approx(28 * 3600.0)
        ends = schedule.boundaries(3 * 86400.0)
        assert list(ends) == [28 * 3600.0, 28 * 3600.0 + 86400.0]
        with pytest.raises(ValueError):
            schedule.boundaries(0.0)
