"""Unit tests for the graph builder."""

import pytest

from repro.dnn.builder import GraphBuilder
from repro.dnn.layers import OpType
from repro.dnn.tensor import DType


class TestShapePropagation:
    def test_conv_stride_halves_spatial(self):
        builder = GraphBuilder("g", (1, 224, 224, 3))
        builder.conv2d(32, kernel=3, stride=2)
        assert builder.current_spec.shape == (1, 112, 112, 32)

    def test_conv_valid_padding(self):
        builder = GraphBuilder("g", (1, 32, 32, 3))
        builder.conv2d(8, kernel=5, stride=1, padding="valid")
        assert builder.current_spec.shape == (1, 28, 28, 8)

    def test_depthwise_preserves_channels(self):
        builder = GraphBuilder("g", (1, 56, 56, 24))
        builder.depthwise_conv2d(kernel=3, stride=2)
        assert builder.current_spec.shape == (1, 28, 28, 24)

    def test_pooling(self):
        builder = GraphBuilder("g", (1, 64, 64, 16))
        builder.max_pool(2)
        assert builder.current_spec.shape == (1, 32, 32, 16)
        builder.global_avg_pool()
        assert builder.current_spec.shape == (1, 16)

    def test_dense_changes_trailing_dim(self):
        builder = GraphBuilder("g", (1, 128))
        builder.dense(10)
        assert builder.current_spec.shape == (1, 10)

    def test_transpose_conv_upsamples(self):
        builder = GraphBuilder("g", (1, 8, 8, 32))
        builder.transpose_conv2d(16, kernel=2, stride=2)
        assert builder.current_spec.shape == (1, 16, 16, 16)

    def test_resize(self):
        builder = GraphBuilder("g", (1, 10, 10, 4))
        builder.resize(scale=2)
        assert builder.current_spec.shape == (1, 20, 20, 4)

    def test_reshape_checks_elements(self):
        builder = GraphBuilder("g", (1, 4, 4, 2))
        builder.reshape((1, 32))
        with pytest.raises(ValueError):
            builder.reshape((1, 33))

    def test_embedding_and_recurrent_shapes(self):
        builder = GraphBuilder("g", (1, 12), input_dtype=DType.INT32)
        builder.embedding(1000, 32)
        assert builder.current_spec.shape == (1, 12, 32)
        builder.lstm(64, return_sequences=True)
        assert builder.current_spec.shape == (1, 12, 64)
        builder.gru(16, return_sequences=False)
        assert builder.current_spec.shape == (1, 16)

    def test_slice_limits_channels(self):
        builder = GraphBuilder("g", (1, 4, 4, 8))
        builder.slice(4)
        assert builder.current_spec.shape == (1, 4, 4, 4)
        with pytest.raises(ValueError):
            builder.slice(100)


class TestBranching:
    def test_residual_add(self):
        builder = GraphBuilder("g", (1, 32, 32, 16))
        checkpoint = builder.checkpoint()
        builder.conv2d(16, kernel=3)
        layer = builder.add(checkpoint.name)
        assert checkpoint.name in layer.inputs

    def test_concat_sums_channels(self):
        builder = GraphBuilder("g", (1, 8, 8, 4))
        branch_point = builder.checkpoint()
        a = builder.conv2d(6, kernel=1)
        builder.restore(branch_point)
        b = builder.conv2d(10, kernel=1)
        builder.concat([a.name], [a.output_spec])
        assert builder.current_spec.shape[-1] == 16

    def test_restore_to(self):
        builder = GraphBuilder("g", (1, 8, 8, 4))
        first = builder.conv2d(8, kernel=1)
        builder.conv2d(16, kernel=1)
        builder.restore_to(first.name, first.output_spec)
        assert builder.current == first.name


class TestDeterminism:
    def test_same_seed_same_weights(self):
        def build(seed):
            builder = GraphBuilder("g", (1, 16, 16, 3), weight_seed=seed)
            builder.conv2d(8)
            builder.dense(4)
            return builder.build()

        assert build(1).weights_checksum() == build(1).weights_checksum()
        assert build(1).weights_checksum() != build(2).weights_checksum()

    def test_quantized_builder(self):
        builder = GraphBuilder("g", (1, 8, 8, 3), weight_dtype=DType.INT8)
        builder.conv2d(4)
        graph = builder.build()
        assert all(w.dtype is DType.INT8 for layer in graph.layers for w in layer.weights)

    def test_metadata_recorded(self):
        builder = GraphBuilder("g", (1, 8, 8, 3), framework="caffe", task="object detection")
        builder.conv2d(4)
        graph = builder.build()
        assert graph.framework == "caffe"
        assert graph.metadata.task == "object detection"

    def test_quantize_dequantize_nodes(self):
        builder = GraphBuilder("g", (1, 8, 8, 3))
        builder.conv2d(4)
        builder.quantize()
        builder.dequantize()
        ops = [layer.op for layer in builder.build().layers]
        assert OpType.QUANTIZE in ops and OpType.DEQUANTIZE in ops
