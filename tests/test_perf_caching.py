"""Tests for the cached accounting layer and the vectorised latency engine.

The caches must be *transparent*: every checksum, aggregate and latency value
must be identical (bitwise for integers/digests, within float tolerance for
sums) to what a cold, never-cached computation produces, and adding a layer
must invalidate every graph-level memo.
"""

import numpy as np
import pytest

from repro.devices.device import device_by_name
from repro.dnn.graph import Graph, GraphMetadata
from repro.dnn.layers import Layer, OpType
from repro.dnn.tensor import DType, TensorSpec, WeightTensor
from repro.dnn.zoo import blazeface, mobilenet_v1
from repro.runtime import Backend, LatencyModel, profile_for


def cold_copy(graph: Graph) -> Graph:
    """Rebuild a graph from scratch with fresh (cold-cache) layers and tensors."""
    layers = [
        Layer(
            name=layer.name,
            op=layer.op,
            inputs=layer.inputs,
            output_spec=TensorSpec(layer.output_spec.shape, layer.output_spec.dtype)
            if layer.output_spec else None,
            weights=tuple(
                WeightTensor(w.shape, w.dtype, w.seed, w.sparsity, w.name)
                for w in layer.weights
            ),
            attrs=dict(layer.attrs),
            activation_dtype=layer.activation_dtype,
            fused_activation=layer.fused_activation,
        )
        for layer in graph.layers
    ]
    return Graph(graph.metadata, graph.input_specs, layers)


@pytest.fixture()
def model():
    return blazeface(weight_seed=3)


class TestWeightTensorCache:
    def test_checksum_matches_cold_instance(self):
        warm = WeightTensor((64, 32), DType.FLOAT32, seed=11, sparsity=0.25)
        warm.checksum()  # populate the cache
        cold = WeightTensor((64, 32), DType.FLOAT32, seed=11, sparsity=0.25)
        assert warm.checksum() == cold.checksum()
        assert warm.to_bytes() == cold.to_bytes()

    def test_materialize_cached_and_stable(self):
        tensor = WeightTensor((128, 128), seed=5)
        first = tensor.materialize()
        second = tensor.materialize()
        assert first is second  # same cached array, not a recomputation
        assert np.array_equal(
            first, WeightTensor((128, 128), seed=5).materialize())

    def test_materialize_cache_keyed_by_sample_size(self):
        tensor = WeightTensor((1000,), seed=2)
        assert tensor.materialize(max_values=10).size == 10
        assert tensor.materialize(max_values=100).size == 100
        assert tensor.materialize(max_values=10).size == 10

    def test_cached_sample_is_read_only(self):
        tensor = WeightTensor((16, 16), seed=1)
        sample = tensor.materialize()
        with pytest.raises(ValueError):
            sample[0] = 1.0

    def test_cache_not_part_of_equality(self):
        warm = WeightTensor((8, 8), seed=4)
        warm.checksum()
        assert warm == WeightTensor((8, 8), seed=4)
        assert hash(warm) == hash(WeightTensor((8, 8), seed=4))


class TestLayerCache:
    def test_flops_macs_checksum_match_cold(self, model):
        for layer in model.layers:
            cold = cold_copy(model).layer(layer.name)
            assert layer.flops() == cold.flops()
            assert layer.macs() == cold.macs()
            assert layer.weights_checksum() == cold.weights_checksum()
            assert layer.num_parameters == cold.num_parameters

    def test_repeated_calls_are_stable(self, model):
        layer = model.layers[0]
        assert layer.flops() == layer.flops()
        assert layer.weights_checksum() == layer.weights_checksum()


class TestGraphCache:
    def test_aggregates_match_cold_copy(self, model):
        cold = cold_copy(model)
        # Call twice: once to populate, once through the cache.
        for _ in range(2):
            assert model.total_flops() == cold.total_flops()
            assert model.total_macs() == cold.total_macs()
            assert model.total_parameters() == cold.total_parameters()
            assert model.model_size_bytes() == cold.model_size_bytes()
            assert model.peak_activation_bytes() == cold.peak_activation_bytes()
            assert model.weights_checksum() == cold.weights_checksum()
            assert model.layer_checksums() == cold.layer_checksums()
            assert model.structural_checksum() == cold.structural_checksum()
            assert model.output_layers() == cold.output_layers()

    def test_add_layer_invalidates_caches(self, model):
        graph = cold_copy(model)
        flops_before = graph.total_flops()
        params_before = graph.total_parameters()
        checksum_before = graph.weights_checksum()
        layers_before = graph.layers
        arrays_before = graph.cost_arrays()
        last = graph.layers[-1]

        graph.add_layer(Layer(
            name="extra_dense",
            op=OpType.DENSE,
            inputs=(last.name,),
            output_spec=TensorSpec((1, 10)),
            weights=(WeightTensor((100, 10), seed=99),),
            attrs={"in_features": 100},
        ))

        assert graph.total_flops() > flops_before
        assert graph.total_parameters() == params_before + 1000
        assert graph.weights_checksum() != checksum_before
        assert len(graph.layers) == len(layers_before) + 1
        assert graph.cost_arrays().num_layers == arrays_before.num_layers + 1
        assert "extra_dense" in graph.layer_checksums()
        # And everything still matches a cold rebuild of the extended graph.
        rebuilt = cold_copy(graph)
        assert graph.total_flops() == rebuilt.total_flops()
        assert graph.weights_checksum() == rebuilt.weights_checksum()

    def test_cost_arrays_match_per_layer_accounting(self, model):
        arrays = model.cost_arrays()
        layers = model.layers
        assert arrays.num_layers == len(layers)
        assert arrays.flops.tolist() == [l.flops() for l in layers]
        assert arrays.weight_params.tolist() == [l.num_parameters for l in layers]
        assert arrays.output_elements.tolist() == [l.output_elements for l in layers]
        with pytest.raises(ValueError):
            arrays.flops[0] = 1

    def test_is_acyclic_native(self, model):
        assert model.is_acyclic()
        # The native check agrees with the networkx ground truth.
        import networkx as nx
        assert nx.is_directed_acyclic_graph(model.to_networkx())


class TestVectorizedLatency:
    def test_matches_layer_cost_breakdown(self, model):
        classifier = mobilenet_v1(weight_seed=3)
        for device_name in ("Q845", "A20", "S21"):
            latency_model = LatencyModel(device_by_name(device_name))
            for backend in (Backend.CPU, Backend.XNNPACK):
                for batch in (1, 4):
                    for graph in (model, classifier):
                        vectorised = latency_model.graph_latency_ms(
                            graph, backend, batch=batch)
                        profile = profile_for(backend)
                        loop = sum(
                            cost.total_ms
                            for cost in latency_model.layer_costs(
                                graph, backend, batch=batch)
                        ) + latency_model.invocation_overhead_ms(profile)
                        assert vectorised == pytest.approx(loop, rel=1e-12)

    def test_rejects_non_positive_batch(self, model):
        latency_model = LatencyModel(device_by_name("Q845"))
        with pytest.raises(ValueError):
            latency_model.graph_latency_ms(model, batch=0)

    def test_empty_graph_costs_invocation_overhead_only(self):
        graph = Graph(GraphMetadata(name="empty"), [TensorSpec((1, 4))])
        latency_model = LatencyModel(device_by_name("Q845"))
        profile = profile_for(Backend.CPU)
        assert graph.cost_arrays().num_layers == 0
        assert latency_model.graph_latency_ms(graph) == pytest.approx(
            latency_model.invocation_overhead_ms(profile))
