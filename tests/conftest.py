"""Shared fixtures: small-scale synthetic store snapshots and sample graphs.

The store snapshots are generated at a small scale factor so the full
pipeline (crawl, download, extract, validate, analyse) runs in seconds while
still exercising every code path; the full-scale reproduction numbers are
produced by the benchmark harness instead.
"""

from __future__ import annotations

import pytest

from repro.android.appgen import AppGenerator, GeneratorConfig, ModelPool
from repro.android.playstore import PlayStore
from repro.core.pipeline import GaugeNN
from repro.devices.device import device_by_name
from repro.dnn.zoo import blazeface, mobilenet_v1, sound_recognition, autocomplete_lstm, unet_lite

#: Scale factor applied to the paper's dataset sizes for fast tests.
TEST_SCALE = 0.03


@pytest.fixture(scope="session")
def model_pool() -> ModelPool:
    """Deterministic pool of unique models shared across snapshot fixtures."""
    return ModelPool(pool_seed=7)


@pytest.fixture(scope="session")
def store(model_pool) -> PlayStore:
    """A synthetic Play Store with both snapshots at test scale."""
    snapshot_2020 = AppGenerator(GeneratorConfig.snapshot_2020(scale=TEST_SCALE),
                                 model_pool).generate()
    snapshot_2021 = AppGenerator(GeneratorConfig.snapshot_2021(scale=TEST_SCALE),
                                 model_pool).generate()
    return PlayStore([snapshot_2020, snapshot_2021])


@pytest.fixture(scope="session")
def gauge(store) -> GaugeNN:
    """A gaugeNN pipeline bound to the synthetic store."""
    return GaugeNN(store)


@pytest.fixture(scope="session")
def analysis_2021(gauge):
    """Offline analysis of the (test-scale) 2021 snapshot."""
    return gauge.analyze_snapshot("2021")


@pytest.fixture(scope="session")
def analysis_2020(gauge):
    """Offline analysis of the (test-scale) 2020 snapshot."""
    return gauge.analyze_snapshot("2020")


@pytest.fixture(scope="session")
def sample_graphs():
    """A small cross-modality set of zoo graphs."""
    return {
        "mobilenet_v1": mobilenet_v1(),
        "blazeface": blazeface(),
        "unet_lite": unet_lite(resolution=128, base_filters=16, depth=3),
        "autocomplete": autocomplete_lstm(),
        "sound": sound_recognition(),
    }


@pytest.fixture(scope="session")
def q845():
    """The Snapdragon 845 development board (the paper's backend-sweep target)."""
    return device_by_name("Q845")


@pytest.fixture(scope="session")
def s21():
    """The high-tier phone of the fleet."""
    return device_by_name("S21")
