"""Tests for ``repro.obs``: timing, collector semantics, the disabled-mode
no-op contract, deterministic-counter bit-identity across pool variants,
cross-process span stitching, the store-backed sink and its reports, and
the CLI surface (``obs report``, ``--telemetry``, the ``store info``
telemetry heading)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.campaign import ambient_spec, run_campaign
from repro.fleet.population import FleetSpec, zoo_population
from repro.fleet.simulator import FleetSimulator
from repro.obs.collector import Collector
from repro.obs.metrics import (DETERMINISTIC, TelemetrySnapshot, WALLCLOCK,
                               merge_counters, merge_values)
from repro.obs.sink import write_telemetry
from repro.obs.report import (metrics_table, run_timeline, shard_skew,
                              stage_breakdown)
from repro.obs.timing import Stopwatch
from repro.obs.tracing import NO_SPAN
from repro.runtime.pool import iter_mapped_chunks
from repro.store import ResultStore

NUM_USERS = 18
HORIZON_S = 4 * 3600.0

TRACE_COLUMNS = ("times_s", "latency_ms", "energy_mj", "throttle",
                 "battery_fraction", "discharge_mah", "offloaded")


@pytest.fixture(autouse=True)
def _telemetry_off():
    """No test leaks an enabled collector into the next."""
    yield
    obs.disable()


@pytest.fixture(scope="module")
def fleet_spec():
    return FleetSpec(graphs_with_tasks=zoo_population(), num_users=NUM_USERS,
                     horizon_s=HORIZON_S, seed=3)


# ---------------------------------------------------------------------------
# Stopwatch
# ---------------------------------------------------------------------------
class TestStopwatch:
    def test_context_manager_measures(self):
        with Stopwatch() as watch:
            assert watch.running
            sum(range(1000))
        assert not watch.running
        assert watch.elapsed_s > 0.0

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_time_call_returns_result_and_seconds(self):
        result, seconds = Stopwatch.time_call(sum, range(100))
        assert result == 4950
        assert seconds > 0.0

    def test_best_of_returns_minimum(self):
        calls = []
        result, seconds = Stopwatch.best_of(3, calls.append, None)
        assert len(calls) == 3
        assert result is None
        assert seconds > 0.0

    def test_best_of_rejects_nonpositive_repeats(self):
        with pytest.raises(ValueError):
            Stopwatch.best_of(0, sum, range(3))


# ---------------------------------------------------------------------------
# Collector semantics
# ---------------------------------------------------------------------------
class TestCollector:
    def test_counters_add_exactly(self):
        collector = Collector()
        collector.count("a", 2)
        collector.count("a", 3)
        collector.count("b")
        snapshot = collector.snapshot()
        assert snapshot.counters == {"a": 5, "b": 1}

    def test_observe_folds_count_total_min_max(self):
        collector = Collector()
        for value in (2.0, 5.0, 1.0):
            collector.observe("delta", value)
        assert collector.snapshot().values["delta"] == [3, 8.0, 1.0, 5.0]

    def test_span_nesting_parents(self):
        collector = Collector()
        with collector.span("outer"):
            with collector.span("inner"):
                pass
        spans = {record.name: record for record in collector.snapshot().spans}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id == 0
        assert spans["inner"].duration_s <= spans["outer"].duration_s

    def test_absorb_remaps_ids_and_reparents_roots(self):
        coordinator = Collector()
        with coordinator.span("dispatch") as dispatch:
            parent = dispatch.span_id
        worker = Collector()
        with worker.span("chunk"):
            with worker.span("leaf"):
                pass
        worker.count("items", 7)
        coordinator.absorb(worker.snapshot(), parent_id=parent)

        snapshot = coordinator.snapshot()
        assert snapshot.counters == {"items": 7}
        spans = {record.name: record for record in snapshot.spans}
        # Worker ids were remapped into the coordinator's space: unique.
        ids = [record.span_id for record in snapshot.spans]
        assert len(ids) == len(set(ids)) == 3
        assert spans["chunk"].parent_id == spans["dispatch"].span_id
        assert spans["leaf"].parent_id == spans["chunk"].span_id

    def test_push_pop_parent_restores_stack(self):
        collector = Collector()
        token = collector.push_parent(42)
        assert collector.current_span_id() == 42
        collector.pop_parent(token)
        assert collector.current_span_id() == 0

    def test_snapshot_merge(self):
        left = TelemetrySnapshot(counters={"a": 1}, values={"v": [1, 2.0, 2.0, 2.0]})
        right = TelemetrySnapshot(counters={"a": 2, "b": 5},
                                  values={"v": [1, 4.0, 4.0, 4.0]})
        merge_counters(left.counters, right.counters)
        merge_values(left.values, right.values)
        assert left.counters == {"a": 3, "b": 5}
        assert left.values["v"] == [2, 6.0, 2.0, 4.0]


# ---------------------------------------------------------------------------
# Disabled-mode contract
# ---------------------------------------------------------------------------
class TestDisabledMode:
    def test_disabled_span_is_shared_noop_singleton(self):
        assert not obs.enabled()
        assert obs.span("anything") is NO_SPAN
        assert obs.span("other", shard=3, items=9) is NO_SPAN
        with obs.span("noop"):
            pass  # enter/exit are free and raise nothing

    def test_disabled_count_observe_are_noops(self):
        obs.count("never", 5)
        obs.observe("never", 1.0)
        obs.enable()
        snapshot = obs.disable()
        assert snapshot.counters == {}
        assert snapshot.values == {}

    def test_forced_span_measures_but_never_records(self):
        span = obs.span("campaign.stage", force=True)
        assert span is not NO_SPAN
        with span:
            sum(range(100))
        assert span.duration_s > 0.0
        obs.enable()
        assert obs.disable().spans == []

    def test_enable_disable_roundtrip(self):
        collector = obs.enable()
        assert obs.enabled()
        assert obs.get_collector() is collector
        obs.count("x")
        snapshot = obs.disable()
        assert not obs.enabled()
        assert snapshot.counters == {"x": 1}
        assert obs.disable() is None


# ---------------------------------------------------------------------------
# Output bit-identity and deterministic counters
# ---------------------------------------------------------------------------
class TestDeterminism:
    def _collect(self, spec, **kwargs):
        return FleetSimulator(spec, **kwargs).collect()

    def test_simulation_output_identical_with_telemetry_on(self, fleet_spec):
        baseline = self._collect(fleet_spec, max_workers=1)
        obs.enable()
        traced = self._collect(fleet_spec, max_workers=1)
        obs.disable()
        for ours, reference in zip(traced, baseline):
            for column in TRACE_COLUMNS:
                assert np.array_equal(getattr(ours, column),
                                      getattr(reference, column)), column

    def test_deterministic_counters_identical_across_pool_variants(
            self, fleet_spec):
        variants = {
            "serial": dict(max_workers=1),
            "threads": dict(max_workers=3, chunk_size=5),
            "processes": dict(max_workers=2, use_processes=True),
        }
        counters = {}
        for name, kwargs in variants.items():
            obs.enable()
            self._collect(fleet_spec, **kwargs)
            counters[name] = obs.disable().counters
        assert counters["serial"]["fleet.users_simulated"] == NUM_USERS
        assert counters["serial"]["fleet.events_simulated"] > 0
        assert counters["threads"] == counters["serial"]
        assert counters["processes"] == counters["serial"]


# ---------------------------------------------------------------------------
# Cross-boundary span stitching
# ---------------------------------------------------------------------------
def _doubling_chunk(items):
    """Module-level (picklable) chunk body emitting one span per item."""
    out = []
    for item in items:
        with obs.span("work", items=1):
            out.append(item * 2)
    return out


class TestStitching:
    def _fan_out(self, **pool_kwargs):
        run_chunk = _doubling_chunk
        collector = obs.enable()
        with collector.span("fan"):
            results = list(iter_mapped_chunks(run_chunk, list(range(10)),
                                              chunk_size=3, **pool_kwargs))
        snapshot = obs.disable()
        assert sorted(results) == [x * 2 for x in range(10)]
        return snapshot

    def _assert_stitched(self, snapshot):
        ids = {record.span_id for record in snapshot.spans}
        fan = next(r for r in snapshot.spans if r.name == "fan")
        work = [r for r in snapshot.spans if r.name == "work"]
        assert len(work) == 10
        # No orphans: every parent id resolves within the run (or root).
        for record in snapshot.spans:
            assert record.parent_id == 0 or record.parent_id in ids
        # Every leaf sits under the fan-out span that dispatched it.
        for record in work:
            assert record.parent_id == fan.span_id

    def test_thread_pool_spans_parent_under_dispatcher(self):
        self._assert_stitched(self._fan_out(max_workers=3))

    def test_process_pool_spans_stitch_across_boundary(self):
        self._assert_stitched(
            self._fan_out(max_workers=2, use_processes=True))

    def test_inline_path_nests_naturally(self):
        self._assert_stitched(self._fan_out(max_workers=1))


# ---------------------------------------------------------------------------
# Sink + reports
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def telemetry_store(fleet_spec, tmp_path_factory):
    """One traced fleet run persisted into a sidecar store."""
    path = tmp_path_factory.mktemp("obs") / "telemetry.store"
    obs.enable()
    collector = obs.get_collector()
    with collector.span("run"):
        FleetSimulator(fleet_spec, max_workers=2, chunk_size=4).run_to_store(
            tmp_path_factory.mktemp("obs-fleet") / "fleet.store")
    rows = write_telemetry(path, run_id="test")
    obs.disable()
    assert rows > 0
    return ResultStore(path)


class TestSinkAndReports:
    def test_sink_requires_snapshot_or_enabled_collector(self, tmp_path):
        with pytest.raises(RuntimeError):
            write_telemetry(tmp_path / "t.store")

    def test_sidecar_holds_only_telemetry_kinds(self, telemetry_store):
        kinds = {meta.kind for meta in telemetry_store.segments}
        assert kinds == {"telemetry_metrics", "telemetry_spans"}

    def test_metrics_roundtrip_by_class(self, telemetry_store):
        rows = metrics_table(telemetry_store, run_id="test")
        by_name = {row["metric"]: row for row in rows}
        assert by_name["fleet.users_simulated"]["value_i"] == NUM_USERS
        assert by_name["fleet.users_simulated"]["metric_class"] == DETERMINISTIC
        deterministic = metrics_table(telemetry_store,
                                      metric_class=DETERMINISTIC)
        assert {row["metric_class"] for row in deterministic} == {DETERMINISTIC}
        assert {row["metric_class"]
                for row in metrics_table(telemetry_store)} >= {DETERMINISTIC}

    def test_run_timeline_tree(self, telemetry_store):
        rows = run_timeline(telemetry_store, run_id="test")
        assert rows
        roots = [row for row in rows if row["depth"] == 0]
        assert len(roots) == 1 and roots[0]["name"] == "run"
        ids = {row["span_id"] for row in rows}
        for row in rows:
            assert row["parent_id"] == 0 or row["parent_id"] in ids
        offsets = [row["offset_s"] for row in rows]
        assert offsets == sorted(offsets)
        assert min(offsets) == 0.0

    def test_stage_breakdown_totals(self, telemetry_store):
        rows = stage_breakdown(telemetry_store, run_id="test")
        by_name = {row["name"]: row for row in rows}
        chunk = by_name["fleet.simulate_chunk"]
        assert chunk["items"] == NUM_USERS
        assert chunk["total_s"] >= chunk["max_s"] >= chunk["mean_s"] > 0.0
        totals = [row["total_s"] for row in rows]
        assert totals == sorted(totals, reverse=True)

    def test_reports_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "empty.store")
        assert run_timeline(store) == []
        assert stage_breakdown(store) == []
        assert shard_skew(store) == []
        assert metrics_table(store) == []

    def test_unknown_run_id_filters_everything(self, telemetry_store):
        assert run_timeline(telemetry_store, run_id="nope") == []


# ---------------------------------------------------------------------------
# Campaign integration: derived seconds + shard skew
# ---------------------------------------------------------------------------
class TestCampaignSpans:
    def test_result_seconds_derive_from_spans_when_disabled(self, tmp_path):
        spec = ambient_spec(12, seed=5, horizon_s=2 * 3600.0)
        result = run_campaign(spec, tmp_path / "c", shards=3,
                              use_processes=False)
        assert result.simulate_seconds > 0.0
        assert result.merge_seconds > 0.0
        for shard in result.shard_results:
            assert shard.seconds > 0.0

    def test_traced_campaign_stitches_shards_and_reports_skew(self, tmp_path):
        spec = ambient_spec(12, seed=5, horizon_s=2 * 3600.0)
        obs.enable()
        run_campaign(spec, tmp_path / "c", shards=3, use_processes=True)
        rows = write_telemetry(tmp_path / "telemetry.store",
                               run_id="campaign")
        snapshot = obs.disable()
        assert rows > 0

        spans = {record.name: record for record in snapshot.spans}
        simulate = spans["campaign.simulate"]
        shard_spans = [r for r in snapshot.spans if r.name == "campaign.shard"]
        assert len(shard_spans) == 3
        for record in shard_spans:
            assert record.parent_id == simulate.span_id
            assert record.shard >= 0

        skew = shard_skew(tmp_path / "telemetry.store", name="campaign.shard")
        assert sorted(row["shard"] for row in skew) == [0, 1, 2]
        assert sum(row["items"] for row in skew) == 12
        mean_skew = sum(row["skew"] for row in skew) / len(skew)
        assert mean_skew == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
class TestCli:
    def test_fleet_telemetry_flag_then_obs_report(self, tmp_path, capsys):
        from repro.cli import main

        telemetry = tmp_path / "telemetry.store"
        assert main(["fleet", "--users", "6", "--hours", "2",
                     "--telemetry", str(telemetry)]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert not obs.enabled()  # the CLI wrapper always disables again

        for table in ("run_timeline", "stages", "metrics"):
            assert main(["obs", "report", str(telemetry),
                         "--table", table]) == 0
        out = capsys.readouterr().out
        assert "fleet.simulate_chunk" in out
        assert "deterministic" in out

        assert main(["obs", "report", str(telemetry), "--table",
                     "run_timeline", "--run", "nope"]) == 1

    def test_store_info_splits_telemetry_heading(self, tmp_path, capsys):
        from repro.cli import main

        collector = Collector()
        collector.count("demo", 1)
        path = tmp_path / "telemetry.store"
        write_telemetry(path, collector.snapshot(), run_id="demo")
        assert main(["store", "info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert "telemetry_metrics" in out
