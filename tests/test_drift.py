"""Tests for the drift policy layer (repro.obs.snapshot / repro.obs.drift)."""

import json

import pytest

from repro import obs
from repro.obs.drift import (BREACH, CLEAN, EXACT, TOLERATED, DriftPolicy,
                             DriftReport, bench_drift, classify_store_diff,
                             diff_snapshots, flatten_bench,
                             ingest_bench_files)
from repro.obs.snapshot import (SNAPSHOT_KIND, build_snapshot, load_snapshot,
                                write_snapshot)
from repro.store import ResultStore, diff_stores


def telemetry_store(path, *, run_id="run", events=1000, seconds=1.25):
    """A telemetry sidecar with one counter and one wall-clock metric."""
    obs.enable()
    try:
        obs.count("fleet.events_simulated", events)
        obs.count("store.rows_committed", 7)
        obs.observe("fleet.sim_seconds", seconds)
        with obs.span("campaign.simulate", items=events):
            pass
        obs.write_telemetry(path, run_id=run_id)
    finally:
        obs.disable()
    return path


class TestPolicy:
    def test_metric_class_patterns(self):
        policy = DriftPolicy()
        assert policy.metric_class_of("seed_seconds") == "wallclock"
        assert policy.metric_class_of("speedup") == "wallclock"
        assert policy.metric_class_of("fleet.sim_seconds") == "wallclock"
        assert policy.metric_class_of("events") == "deterministic"
        assert policy.metric_class_of("rows") == "deterministic"
        assert policy.metric_class_of("models") == "deterministic"

    def test_classify_value(self):
        policy = DriftPolicy(rel_tol=0.25)
        assert policy.classify_value(10.0, 10.0, True) == CLEAN
        assert policy.classify_value(10, 11, True) == EXACT
        assert policy.classify_value(10.0, 11.0, False) == TOLERATED
        assert policy.classify_value(10.0, 20.0, False) == BREACH

    def test_skips(self):
        policy = DriftPolicy()
        assert policy.skips("gates_enforced")
        assert not policy.skips("events")

    def test_report_severity_counts_and_exit_semantics(self):
        report = DriftReport()
        assert report.clean and report.max_severity == CLEAN
        report.add(CLEAN, "x", "m")
        report.add(TOLERATED, "x", "m2", baseline=1.0, current=1.1)
        report.add(EXACT, "x", "m3", baseline=1, current=2)
        assert report.severity_counts == {"clean": 1, "tolerated": 1,
                                          "breach": 0, "exact": 1}
        assert report.max_severity == EXACT
        # CLEAN findings are counted but not kept.
        assert len(report.findings) == 2
        assert report.to_json()["verdict"] == "exact"


class TestSnapshots:
    def test_round_trip_and_kind_marker(self, tmp_path):
        telemetry = telemetry_store(tmp_path / "t.store")
        snapshot = build_snapshot(telemetry=telemetry, run_id="run",
                                  meta={"scale": 0.05})
        assert snapshot["kind"] == SNAPSHOT_KIND
        assert snapshot["counters"]["fleet.events_simulated"] == 1000
        assert "fleet.sim_seconds" in snapshot["wallclock"]
        path = write_snapshot(tmp_path / "snap.json", snapshot)
        assert load_snapshot(path) == snapshot

    def test_load_rejects_non_snapshot_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"benchmark": "x"}))
        with pytest.raises(ValueError):
            load_snapshot(path)

    def test_identical_snapshots_are_clean(self, tmp_path):
        telemetry = telemetry_store(tmp_path / "t.store")
        snapshot = build_snapshot(telemetry=telemetry)
        assert diff_snapshots(snapshot, snapshot).clean

    def test_counter_drift_is_exact(self, tmp_path):
        a = build_snapshot(
            telemetry=telemetry_store(tmp_path / "a.store", events=1000))
        b = build_snapshot(
            telemetry=telemetry_store(tmp_path / "b.store", events=1001))
        report = diff_snapshots(a, b)
        assert report.max_severity == EXACT
        (finding,) = [f for f in report.findings
                      if f["metric"] == "fleet.events_simulated"]
        assert finding["baseline"] == 1000 and finding["current"] == 1001

    def test_wallclock_drift_uses_tolerance_band(self, tmp_path):
        a = build_snapshot(
            telemetry=telemetry_store(tmp_path / "a.store", seconds=1.0))
        near = build_snapshot(
            telemetry=telemetry_store(tmp_path / "b.store", seconds=1.2))
        far = build_snapshot(
            telemetry=telemetry_store(tmp_path / "c.store", seconds=5.0))
        assert diff_snapshots(a, near).max_severity == TOLERATED
        assert diff_snapshots(a, far).max_severity == BREACH

    def test_missing_counter_is_exact_missing_wallclock_tolerated(self):
        a = {"schema_version": 1, "counters": {"events": 5},
             "wallclock": {"sim_seconds": {"count": 1, "total": 1.0,
                                           "min": 1.0, "max": 1.0}}}
        b = {"schema_version": 1, "counters": {}, "wallclock": {}}
        report = diff_snapshots(a, b)
        severities = {f["metric"]: f["severity"] for f in report.findings}
        assert severities["events"] == "exact"
        assert severities["sim_seconds"] == "tolerated"

    def test_table_cell_drift_is_exact(self):
        table = {"columns": ["device", "samples"], "rows": [["S21", 10]]}
        changed = {"columns": ["device", "samples"], "rows": [["S21", 11]]}
        a = {"schema_version": 1, "tables": {"latency_ecdf": table}}
        b = {"schema_version": 1, "tables": {"latency_ecdf": changed}}
        report = diff_snapshots(a, b)
        assert report.max_severity == EXACT
        (finding,) = report.findings
        assert finding["source"] == "table:latency_ecdf"
        assert finding["metric"] == "samples" and finding["key"] == "S21"

    def test_meta_scale_mismatch_is_exact(self):
        a = {"schema_version": 1, "meta": {"scale": "0.05"}}
        b = {"schema_version": 1, "meta": {"scale": "0.15"}}
        assert diff_snapshots(a, b).max_severity == EXACT

    def test_schema_version_mismatch_refuses(self):
        with pytest.raises(ValueError, match="refresh the baseline"):
            diff_snapshots({"schema_version": 1}, {"schema_version": 2})

    def test_empty_baseline_is_flagged_in_notes(self):
        empty = {"schema_version": 1, "meta": {}, "tables": {},
                 "counters": {}, "wallclock": {}}
        report = diff_snapshots(empty, dict(empty))
        assert report.clean
        assert any("empty" in note for note in report.notes)

    def test_populated_baseline_has_no_empty_note(self, tmp_path):
        store = telemetry_store(tmp_path / "t.store")
        snapshot = build_snapshot(telemetry=store, run_id="run")
        report = diff_snapshots(snapshot, snapshot)
        assert report.clean
        assert not any("empty" in note for note in report.notes)


class TestStoreDiffClassification:
    def test_result_kind_drift_is_exact(self, tmp_path):
        import numpy as np

        def batch(latency):
            return {
                "user_id": np.arange(4, dtype=np.int64),
                "time_s": np.arange(4, dtype=float),
                "device_name": np.array(["S21"] * 4),
                "model_name": np.array(["m"] * 4),
                "scenario": np.array(["photo"] * 4),
                "backend": np.array(["cpu"] * 4),
                "region": np.array(["amer"] * 4),
                "target": np.array(["local"] * 4),
                "latency_ms": np.full(4, latency),
                "wait_ms": np.zeros(4),
                "energy_mj": np.ones(4),
                "throttle_factor": np.ones(4),
                "battery_fraction": np.ones(4),
                "discharge_mah": np.zeros(4),
                "cloud_api": np.array([""] * 4),
                "cloud_bytes": np.zeros(4, dtype=np.int64),
            }

        a = ResultStore(tmp_path / "a.store")
        with a.writer() as writer:
            writer.append_batch("fleet_events", batch(10.0))
        b = ResultStore(tmp_path / "b.store")
        with b.writer() as writer:
            writer.append_batch("fleet_events", batch(10.5))
        report = classify_store_diff(diff_stores(a, b))
        assert report.max_severity == EXACT  # 5% off, but exact class

    def test_telemetry_wallclock_rows_use_tolerance(self, tmp_path):
        a = telemetry_store(tmp_path / "a.store", seconds=1.0)
        b = telemetry_store(tmp_path / "b.store", seconds=1.1)
        report = classify_store_diff(
            diff_stores(ResultStore(a), ResultStore(b)))
        wallclock = [f for f in report.findings
                     if f["source"] == "store:telemetry_metrics"]
        assert wallclock and all(f["severity"] == "tolerated"
                                 for f in wallclock)

    def test_self_diff_classifies_clean(self, tmp_path):
        store = ResultStore(telemetry_store(tmp_path / "a.store"))
        assert classify_store_diff(diff_stores(store, store)).clean


class TestBenchDrift:
    def bench_payload(self, path, run_id, *, speedup=10.0, events=1000):
        path.write_text(json.dumps({
            "benchmark": "sweep", "run_id": run_id, "schema_version": 1,
            "scale": 0.15, "gates_enforced": True,
            "zoo": {"speedup": speedup, "seed_seconds": 1.0},
            "events": events}))
        return path

    def test_flatten_bench(self):
        leaves = flatten_bench({"benchmark": "x", "run_id": "r",
                                "schema_version": 1, "scale": 0.15,
                                "nested": {"speedup": 5.0, "ok": True},
                                "label": "text", "series": [1, 2]})
        assert leaves == {"scale": 0.15, "nested.speedup": 5.0,
                          "nested.ok": 1.0}

    def test_ingest_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "trajectory.store")
        path = self.bench_payload(tmp_path / "BENCH_sweep.json", "r1")
        first = ingest_bench_files(store, [path])
        assert first["ingested"] == 1 and first["rows"] > 0
        again = ingest_bench_files(store, [path])
        assert again["ingested"] == 0 and again["skipped"] == 1
        arrays = store.query("bench_runs").arrays("benchmark")
        assert arrays["benchmark"].size == first["rows"]

    def test_single_run_notes_not_compared(self, tmp_path):
        store = ResultStore(tmp_path / "trajectory.store")
        ingest_bench_files(
            store, [self.bench_payload(tmp_path / "b.json", "r1")])
        report = bench_drift(store)
        assert report.clean
        assert any("single run" in note for note in report.notes)

    def test_speedup_erosion_breaches(self, tmp_path):
        store = ResultStore(tmp_path / "trajectory.store")
        ingest_bench_files(store, [
            self.bench_payload(tmp_path / "r1.json", "r1", speedup=10.0)])
        ingest_bench_files(store, [
            self.bench_payload(tmp_path / "r2.json", "r2", speedup=6.0)])
        report = bench_drift(store)
        assert report.max_severity == BREACH
        (finding,) = [f for f in report.findings
                      if f["metric"] == "zoo.speedup"]
        assert finding["severity"] == "breach"
        assert finding["key"] == "r1->r2"

    def test_deterministic_bench_metric_drift_is_exact(self, tmp_path):
        store = ResultStore(tmp_path / "trajectory.store")
        ingest_bench_files(store, [
            self.bench_payload(tmp_path / "r1.json", "r1", events=1000)])
        ingest_bench_files(store, [
            self.bench_payload(tmp_path / "r2.json", "r2", events=1001)])
        report = bench_drift(store)
        assert report.max_severity == EXACT
        assert any(f["metric"] == "events" and f["severity"] == "exact"
                   for f in report.findings)
        # gates_enforced is skipped entirely by policy.
        assert not any("gates_enforced" in f["metric"]
                       for f in report.findings)

    def test_empty_store_notes(self, tmp_path):
        report = bench_drift(ResultStore(tmp_path / "empty.store"))
        assert report.clean
        assert any("nothing to compare" in note for note in report.notes)


class TestCli:
    def test_snapshot_then_clean_drift(self, tmp_path, capsys):
        from repro.cli import main

        telemetry = telemetry_store(tmp_path / "t.store", run_id="smoke")
        snap = tmp_path / "baseline.json"
        assert main(["obs", "snapshot", "--telemetry", str(telemetry),
                     "--run", "smoke", "--out", str(snap),
                     "--meta", "scale=0.05"]) == 0
        assert load_snapshot(snap)["meta"]["scale"] == "0.05"
        assert main(["obs", "drift", "--baseline", str(snap),
                     "--telemetry", str(telemetry), "--run", "smoke"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_drift_exit_codes_by_severity(self, tmp_path, capsys):
        from repro.cli import main

        baseline = telemetry_store(tmp_path / "a.store", run_id="smoke")
        snap = tmp_path / "baseline.json"
        assert main(["obs", "snapshot", "--telemetry", str(baseline),
                     "--run", "smoke", "--out", str(snap)]) == 0
        exact = telemetry_store(tmp_path / "b.store", run_id="smoke",
                                events=1001)
        report_path = tmp_path / "report.json"
        assert main(["obs", "drift", "--baseline", str(snap),
                     "--telemetry", str(exact), "--run", "smoke",
                     "--report", str(report_path)]) == 3
        payload = json.loads(report_path.read_text())
        assert payload["verdict"] == "exact"

        tolerated = telemetry_store(tmp_path / "c.store", run_id="smoke",
                                    seconds=1.4)
        assert main(["obs", "drift", "--baseline", str(snap),
                     "--telemetry", str(tolerated), "--run", "smoke"]) == 1
        # CI mode: wall-clock drift alone cannot fail the build.
        assert main(["obs", "drift", "--baseline", str(snap),
                     "--telemetry", str(tolerated), "--run", "smoke",
                     "--fail-on", "exact"]) == 0
        capsys.readouterr()

    def test_obs_report_graceful_without_telemetry(self, tmp_path, capsys):
        import numpy as np

        from repro.cli import main

        store = ResultStore(tmp_path / "campaign.store")
        with store.writer() as writer:
            writer.append_batch("fleet_load", {
                "region": np.array(["amer"]),
                "cloud_api": np.array(["Vision"]),
                "bin_index": np.zeros(1, dtype=np.int64),
                "bin_start_s": np.zeros(1),
                "bin_seconds": np.full(1, 900.0),
                "requests": np.ones(1, dtype=np.int64),
                "payload_bytes": np.zeros(1, dtype=np.int64),
            })
        assert main(["obs", "report", str(store.root)]) == 1
        out = capsys.readouterr().out
        assert "no matching telemetry" in out and "fleet_load" in out

    def test_obs_report_wrong_run_lists_available(self, tmp_path, capsys):
        from repro.cli import main

        telemetry = telemetry_store(tmp_path / "t.store", run_id="smoke")
        assert main(["obs", "report", str(telemetry),
                     "--run", "nope"]) == 1
        out = capsys.readouterr().out
        assert "available runs" in out and "smoke" in out

    def test_bench_mode_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        bench_store = tmp_path / "trajectory.store"
        r1 = tmp_path / "r1.json"
        r1.write_text(json.dumps({"benchmark": "x", "run_id": "r1",
                                  "schema_version": 1, "scale": 0.15,
                                  "speedup": 10.0}))
        assert main(["obs", "drift", "--bench", str(r1),
                     "--bench-store", str(bench_store)]) == 0
        r2 = tmp_path / "r2.json"
        r2.write_text(json.dumps({"benchmark": "x", "run_id": "r2",
                                  "schema_version": 1, "scale": 0.15,
                                  "speedup": 6.0}))
        assert main(["obs", "drift", "--bench", str(r2),
                     "--bench-store", str(bench_store)]) == 2
        out = capsys.readouterr().out
        assert "BREACH" in out
