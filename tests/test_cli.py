"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_census_defaults(self):
        args = build_parser().parse_args(["census"])
        assert args.snapshot == "2021"
        assert args.scale == pytest.approx(0.05)

    def test_benchmark_arguments(self):
        args = build_parser().parse_args(
            ["benchmark", "--devices", "A20", "S21", "--backend", "xnnpack",
             "--inferences", "2", "--scale", "0.02"])
        assert args.devices == ["A20", "S21"]
        assert args.backend == "xnnpack"
        assert args.inferences == 2

    def test_invalid_device_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["benchmark", "--devices", "Pixel6"])


class TestCommands:
    def test_census_runs(self, capsys):
        assert main(["census", "--scale", "0.02"]) == 0
        output = capsys.readouterr().out
        assert "total apps" in output
        assert "models per framework" in output

    def test_benchmark_runs(self, capsys):
        assert main(["benchmark", "--scale", "0.02", "--devices", "S21",
                     "--inferences", "2"]) == 0
        output = capsys.readouterr().out
        assert "S21" in output
        assert "mean ms" in output

    def test_scenarios_runs(self, capsys):
        assert main(["scenarios", "--scale", "0.02"]) == 0
        output = capsys.readouterr().out
        assert "Segm." in output

    def test_compare_runs(self, capsys):
        assert main(["compare", "--scale", "0.02", "--top", "5"]) == 0
        output = capsys.readouterr().out
        assert "models:" in output
        assert "cloud-ML apps" in output
