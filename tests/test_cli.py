"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_census_defaults(self):
        args = build_parser().parse_args(["census"])
        assert args.snapshot == "2021"
        assert args.scale == pytest.approx(0.05)

    def test_benchmark_arguments(self):
        args = build_parser().parse_args(
            ["benchmark", "--devices", "A20", "S21", "--backend", "xnnpack",
             "--inferences", "2", "--scale", "0.02"])
        assert args.devices == ["A20", "S21"]
        assert args.backend == "xnnpack"
        assert args.inferences == 2

    def test_invalid_device_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["benchmark", "--devices", "Pixel6"])


class TestCommands:
    def test_census_runs(self, capsys):
        assert main(["census", "--scale", "0.02"]) == 0
        output = capsys.readouterr().out
        assert "total apps" in output
        assert "models per framework" in output

    def test_benchmark_runs(self, capsys):
        assert main(["benchmark", "--scale", "0.02", "--devices", "S21",
                     "--inferences", "2"]) == 0
        output = capsys.readouterr().out
        assert "S21" in output
        assert "mean ms" in output

    def test_scenarios_runs(self, capsys):
        assert main(["scenarios", "--scale", "0.02"]) == 0
        output = capsys.readouterr().out
        assert "Segm." in output

    def test_compare_runs(self, capsys):
        assert main(["compare", "--scale", "0.02", "--top", "5"]) == 0
        output = capsys.readouterr().out
        assert "models:" in output
        assert "cloud-ML apps" in output


class TestStoreCommands:
    @pytest.fixture()
    def store_path(self, tmp_path):
        path = tmp_path / "campaign.store"
        assert main(["sweep", "--scale", "0.02", "--devices", "S21",
                     "--store", str(path)]) == 0
        return path

    def test_parse_where_expressions(self):
        from repro.cli import _parse_where

        assert _parse_where("device_name=S21") == ("device_name", "==", "S21")
        assert _parse_where("latency_ms<=5.5") == ("latency_ms", "<=", 5.5)
        assert _parse_where("batch_size!=1") == ("batch_size", "!=", 1)
        with pytest.raises(Exception):
            _parse_where("nonsense")

    def test_sweep_store_streams_and_reports(self, tmp_path, capsys):
        path = tmp_path / "fresh.store"
        assert main(["sweep", "--scale", "0.02", "--devices", "S21",
                     "--store", str(path)]) == 0
        output = capsys.readouterr().out
        assert "streamed" in output
        assert "mean ms" in output

    def test_store_query_aggregate(self, store_path, capsys):
        assert main(["store", "query", str(store_path),
                     "--where", "device_name=S21",
                     "--group-by", "backend",
                     "--agg", "latency_ms:mean,median"]) == 0
        output = capsys.readouterr().out
        assert "latency_ms_mean" in output
        assert "segments" in output

    def test_store_query_rows(self, store_path, capsys):
        assert main(["store", "query", str(store_path), "--limit", "2"]) == 0
        output = capsys.readouterr().out
        assert "latency_ms" in output

    def test_store_report_tables(self, store_path, capsys):
        for table, marker in (("summary", "segments"),
                              ("latency_ecdf", "median ms"),
                              ("energy", "median mJ"),
                              ("cloud", "provider")):
            assert main(["store", "report", str(store_path),
                         "--table", table]) == 0
            assert marker in capsys.readouterr().out

    def test_store_info_verifies(self, store_path, capsys):
        assert main(["store", "info", str(store_path), "--verify"]) == 0
        output = capsys.readouterr().out
        assert "executions" in output
        assert "checksums: OK" in output

    def test_sweep_chunk_size_flag(self):
        args = build_parser().parse_args(
            ["sweep", "--chunk-size", "16", "--store", "x.store"])
        assert args.chunk_size == 16
        assert args.store == "x.store"


class TestScenariosStore:
    def test_scenarios_persist_rows(self, tmp_path, capsys):
        path = tmp_path / "scenarios.store"
        assert main(["scenarios", "--scale", "0.15",
                     "--store", str(path)]) == 0
        output = capsys.readouterr().out
        assert "persisted" in output

        from repro.store import ResultStore

        store = ResultStore(path)
        assert store.num_rows("scenarios") > 0
        assert store.verify_integrity() == len(store.segments)
        for row in store.query("scenarios").rows():
            assert row["battery_discharge_mah"] >= 0.0


class TestStoreCompactCommand:
    def test_compact_preserves_queries(self, tmp_path, capsys):
        path = tmp_path / "compactable.store"
        # Two ingestion passes leave two small segments per kind.
        for _ in range(2):
            assert main(["sweep", "--scale", "0.02", "--devices", "S21",
                         "--store", str(path)]) == 0
        capsys.readouterr()

        from repro.store import ResultStore

        before = ResultStore(path).query("executions").rows()
        assert main(["store", "compact", str(path), "--verify"]) == 0
        output = capsys.readouterr().out
        assert "compacted" in output
        assert "checksums: OK" in output
        assert ResultStore(path).query("executions").rows() == before

        # A second pass has nothing left to merge.
        assert main(["store", "compact", str(path)]) == 0
        assert "nothing to compact" in capsys.readouterr().out


class TestFleetCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.users == 50
        assert args.hours == pytest.approx(24.0)
        assert args.fleet_store is None

    def test_fleet_in_memory(self, capsys):
        assert main(["fleet", "--scale", "0.02", "--users", "8",
                     "--hours", "2", "--workers", "2"]) == 0
        output = capsys.readouterr().out
        assert "simulated" in output
        assert "p99 ms" in output

    def test_fleet_store_path_and_reports(self, tmp_path, capsys):
        path = tmp_path / "fleet.store"
        assert main(["fleet", "--scale", "0.02", "--users", "10",
                     "--hours", "3", "--store", str(path),
                     "--rows-per-segment", "1000"]) == 0
        output = capsys.readouterr().out
        assert "streamed" in output
        assert "battery drain per user" in output
        assert "cloud offload" in output

        from repro.store import ResultStore

        store = ResultStore(path)
        assert store.num_rows("fleet_events") > 0
        # The fleet_events kind is queryable through the generic store CLI.
        assert main(["store", "query", str(path), "--kind", "fleet_events",
                     "--group-by", "scenario",
                     "--agg", "latency_ms:p50,p99"]) == 0
        assert "latency_ms_p99" in capsys.readouterr().out


class TestFleetCloudCapacity:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert not args.cloud_capacity
        assert not args.diurnal
        assert not args.recharge
        assert args.queue_wait_ms == pytest.approx(2000.0)
        assert args.queue_overflow == "shed"
        assert args.cloud_bin_minutes == pytest.approx(15.0)
        assert args.cloud_max_passes == 8

    def test_cloud_capacity_in_memory(self, capsys):
        assert main(["fleet", "--scale", "0.02", "--users", "12",
                     "--hours", "4", "--cloud-capacity", "--diurnal"]) == 0
        output = capsys.readouterr().out
        assert "fixed point" in output
        assert "passes" in output
        assert "queue conservation: arrived" in output

    def test_cloud_capacity_store_report_round_trip(self, tmp_path, capsys):
        """Satellite gate: fleet CLI -> store -> report round trip, with
        compaction interacting with the fleet_load rows."""
        path = tmp_path / "cloud.store"
        # Overflowing the device queue to the cloud guarantees regional
        # load even when nobody capability- or battery-offloads.
        assert main(["fleet", "--scale", "0.02", "--users", "16",
                     "--hours", "6", "--cloud-capacity",
                     "--queue-wait-ms", "500", "--queue-overflow", "cloud",
                     "--store", str(path),
                     "--rows-per-segment", "500"]) == 0
        output = capsys.readouterr().out
        assert "queue conservation" in output
        assert "[OK]" in output

        from repro.cloud import LoadProfile, REFERENCE_REGIONS
        from repro.store import ResultStore

        store = ResultStore(path)
        assert store.num_rows("fleet_events") > 0
        assert store.num_rows("fleet_load") > 0
        regions = tuple(r.name for r in REFERENCE_REGIONS)
        before = LoadProfile.from_store(store, regions,
                                        6 * 3600.0, 15 * 60.0)
        assert before.total_requests > 0

        assert main(["store", "report", str(path),
                     "--table", "cloud_load"]) == 0
        report_out = capsys.readouterr().out
        assert "peak rps" in report_out

        # Compacting the sharded store must not change the reconstruction
        # or the report.
        assert main(["store", "compact", str(path), "--verify"]) == 0
        capsys.readouterr()
        after = LoadProfile.from_store(ResultStore(path), regions,
                                       6 * 3600.0, 15 * 60.0)
        import numpy as np

        assert np.array_equal(after.requests, before.requests)
        assert main(["store", "report", str(path),
                     "--table", "cloud_load"]) == 0
        assert capsys.readouterr().out == report_out

        # fleet_load is queryable through the generic store CLI too.
        assert main(["store", "query", str(path), "--kind", "fleet_load",
                     "--group-by", "region",
                     "--agg", "requests:sum"]) == 0
        assert "requests_sum" in capsys.readouterr().out

    def test_cloud_load_report_on_fleet_only_store(self, tmp_path, capsys):
        path = tmp_path / "plain.store"
        assert main(["fleet", "--scale", "0.02", "--users", "6",
                     "--hours", "2", "--store", str(path)]) == 0
        capsys.readouterr()
        assert main(["store", "report", str(path),
                     "--table", "cloud_load"]) == 0
        assert "no fleet_load rows" in capsys.readouterr().out

    def test_queue_and_recharge_flags(self, capsys):
        assert main(["fleet", "--scale", "0.02", "--users", "6",
                     "--hours", "30", "--recharge",
                     "--queue-wait-ms", "500",
                     "--queue-overflow", "cloud"]) == 0
        assert "simulated" in capsys.readouterr().out


class TestCampaignCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["campaign", "run", "--store", "c.dir"])
        assert args.users == 100000
        assert args.shards == 8
        assert args.workload == "ambient"
        assert args.compress is False
        assert args.max_parallel is None

    def test_requires_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "run"])

    def test_round_trip_through_store_commands(self, tmp_path, capsys):
        root = tmp_path / "c.dir"
        assert main(["campaign", "run", "--users", "24", "--shards", "3",
                     "--store", str(root), "--hours", "6",
                     "--max-parallel", "1", "--compress"]) == 0
        output = capsys.readouterr().out
        assert "3 shards" in output
        assert "merged store:" in output

        merged = str(root / "merged.store")
        assert main(["store", "info", merged, "--verify"]) == 0
        output = capsys.readouterr().out
        assert "fleet_events" in output
        assert "fleet_load" in output
        assert "checksums: OK" in output

        from repro.store import ResultStore

        store = ResultStore(merged)
        assert store.num_rows("fleet_events") > 0
        assert store.num_rows("fleet_load") > 0

    def test_matches_unsharded_cli_run(self, tmp_path, capsys):
        import numpy as np

        for name, shards in (("a", "1"), ("b", "4")):
            assert main(["campaign", "run", "--users", "20", "--shards",
                         shards, "--store", str(tmp_path / name),
                         "--hours", "4", "--max-parallel", "1"]) == 0
        capsys.readouterr()

        from repro.store import ResultStore

        one = ResultStore(tmp_path / "a" / "merged.store")
        four = ResultStore(tmp_path / "b" / "merged.store")
        for kind in ("fleet_events", "fleet_load"):
            left = one.query(kind).arrays()
            right = four.query(kind).arrays()
            for name, array in left.items():
                assert np.array_equal(right[name], array), name


class TestStoreMergeCommand:
    def test_merge_round_trip(self, tmp_path, capsys):
        for name in ("x", "y"):
            assert main(["sweep", "--scale", "0.02", "--devices", "S21",
                         "--store", str(tmp_path / f"{name}.store")]) == 0
        capsys.readouterr()
        assert main(["store", "merge", str(tmp_path / "m.store"),
                     str(tmp_path / "x.store"), str(tmp_path / "y.store"),
                     "--verify"]) == 0
        output = capsys.readouterr().out
        assert "adopted" in output
        assert "hard-linked" in output

        from repro.store import ResultStore

        merged = ResultStore(tmp_path / "m.store")
        expected = ResultStore(tmp_path / "x.store").num_rows("executions") \
            + ResultStore(tmp_path / "y.store").num_rows("executions")
        assert merged.num_rows("executions") == expected
        assert merged.verify_integrity() == len(merged.segments)

    def test_merge_rejects_bad_kind(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["store", "merge", "m.store", "s.store", "--kinds", "bogus"])

    def test_compact_and_export_accept_compress(self):
        args = build_parser().parse_args(
            ["store", "compact", "s.store", "--compress"])
        assert args.compress is True
        args = build_parser().parse_args(
            ["store", "export", "s.store", "d.store", "--compress"])
        assert args.compress is True
