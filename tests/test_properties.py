"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.analysis.ecdf import Ecdf
from repro.devices.battery import Battery
from repro.devices.device import DEVICE_FLEET
from repro.devices.scheduler import CpuScheduler, ThreadConfig
from repro.dnn.builder import GraphBuilder
from repro.dnn.layers import OpType
from repro.dnn.tensor import DType, TensorSpec, WeightTensor
from repro.formats.payload import decode_graph, encode_graph
from repro.runtime.latency_model import LatencyModel


# --------------------------------------------------------------------------- #
# Weight tensors
# --------------------------------------------------------------------------- #
@given(
    shape=st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=3),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    sparsity=st.floats(min_value=0.0, max_value=0.9),
)
@settings(max_examples=50, deadline=None)
def test_weight_tensor_checksum_is_deterministic(shape, seed, sparsity):
    a = WeightTensor(tuple(shape), seed=seed, sparsity=sparsity)
    b = WeightTensor(tuple(shape), seed=seed, sparsity=sparsity)
    assert a.checksum() == b.checksum()
    assert a.num_parameters == b.num_parameters


@given(
    shape=st.lists(st.integers(min_value=1, max_value=32), min_size=1, max_size=3),
    seed_a=st.integers(min_value=0, max_value=1000),
    seed_b=st.integers(min_value=1001, max_value=2000),
)
@settings(max_examples=30, deadline=None)
def test_weight_tensor_different_seeds_differ(shape, seed_a, seed_b):
    a = WeightTensor(tuple(shape), seed=seed_a)
    b = WeightTensor(tuple(shape), seed=seed_b)
    assert a.checksum() != b.checksum()


@given(
    dims=st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=4),
    dtype=st.sampled_from(list(DType)),
)
@settings(max_examples=50, deadline=None)
def test_tensor_spec_size_consistency(dims, dtype):
    spec = TensorSpec(tuple(dims), dtype)
    assert spec.size_bytes == spec.num_elements * dtype.bytes_per_element
    assert spec.num_elements >= 1


# --------------------------------------------------------------------------- #
# Graph construction and serialisation round trips
# --------------------------------------------------------------------------- #
@st.composite
def small_cnn(draw):
    """A random small CNN built with the graph builder."""
    resolution = draw(st.sampled_from([16, 32, 48]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    builder = GraphBuilder(f"random_cnn_{seed}", (1, resolution, resolution, 3),
                           weight_seed=seed)
    for index in range(draw(st.integers(min_value=1, max_value=4))):
        filters = draw(st.sampled_from([8, 16, 24]))
        if draw(st.booleans()):
            builder.depthwise_conv2d(kernel=3, stride=1, activation=OpType.RELU6)
            builder.conv2d(filters, kernel=1)
        else:
            builder.conv2d(filters, kernel=3, stride=draw(st.sampled_from([1, 2])),
                           activation=OpType.RELU)
    builder.global_avg_pool()
    builder.dense(draw(st.sampled_from([2, 10, 100])))
    builder.softmax()
    return builder.build()


@given(graph=small_cnn())
@settings(max_examples=25, deadline=None)
def test_random_graphs_are_well_formed(graph):
    assert graph.is_acyclic()
    assert graph.total_parameters() > 0
    assert graph.total_flops() >= 2 * graph.total_macs() - graph.num_layers
    fractions = graph.layer_category_fractions()
    assert abs(sum(fractions.values()) - 1.0) < 1e-9


@given(graph=small_cnn())
@settings(max_examples=20, deadline=None)
def test_payload_round_trip_preserves_identity(graph):
    restored = decode_graph(encode_graph(graph))
    assert restored.weights_checksum() == graph.weights_checksum()
    assert restored.total_flops() == graph.total_flops()
    assert restored.num_layers == graph.num_layers


# --------------------------------------------------------------------------- #
# Scheduler and latency model invariants
# --------------------------------------------------------------------------- #
@given(
    device=st.sampled_from(list(DEVICE_FLEET)),
    threads=st.integers(min_value=1, max_value=16),
    affinity=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
)
@settings(max_examples=60, deadline=None)
def test_scheduler_throughput_is_positive_and_bounded(device, threads, affinity):
    scheduler = CpuScheduler(device.soc)
    throughput = scheduler.effective_gflops(ThreadConfig(threads, affinity))
    assert 0 < throughput <= device.soc.peak_cpu_gflops


@given(
    device=st.sampled_from(list(DEVICE_FLEET)),
    batch=st.integers(min_value=1, max_value=32),
    graph=small_cnn(),
)
@settings(max_examples=20, deadline=None)
def test_latency_monotone_in_batch(device, batch, graph):
    model = LatencyModel(device)
    single = model.graph_latency_ms(graph, batch=1)
    batched = model.graph_latency_ms(graph, batch=batch)
    assert batched >= single
    assert batched <= single * batch + 1e-6


# --------------------------------------------------------------------------- #
# Battery and ECDF invariants
# --------------------------------------------------------------------------- #
@given(
    capacity=st.integers(min_value=1000, max_value=6000),
    energy=st.floats(min_value=0.0, max_value=1e5),
)
@settings(max_examples=50, deadline=None)
def test_battery_discharge_is_monotone(capacity, energy):
    battery = Battery(capacity_mah=capacity)
    assert battery.discharge_mah(energy) >= 0
    assert 0.0 <= battery.discharge_fraction(energy) <= 1.0
    assert battery.discharge_mah(energy) <= battery.discharge_mah(energy + 1.0)


@given(samples=st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_ecdf_is_a_distribution(samples):
    ecdf = Ecdf.from_samples(samples)
    assert ecdf(min(samples) - 1.0) == 0.0
    assert ecdf(max(samples)) == 1.0
    assert 0.0 <= ecdf(sum(samples) / len(samples)) <= 1.0
