"""repro.serve: snapshot isolation, caches, HTTP endpoints, live ingest.

The contract under test is the PR 9 tentpole: every served response is
evaluated against one pinned manifest generation and is bit-identical to
the offline ``store query`` / ``store report --json`` paths at that
generation — including while a StoreWriter commits into the same
directory — and the serve cache accelerates repeats without changing a
byte.  Bit-identity is always asserted through JSON text, the wire
format, so float formatting differences cannot hide.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaign import (BackgroundIngest, ingest_fleet_batches,
                            synthetic_fleet_batch)
from repro.serve import (QueryService, QuerySpec, Router, ServeApp,
                         ServeCache, ServerThread, SnapshotManager,
                         report_payload)
from repro.store import ReportServer, ResultStore, compact_store


def dumps(payload) -> str:
    return json.dumps(payload, sort_keys=True)


@pytest.fixture()
def fleet_store(tmp_path):
    """Six committed generations of synthetic fleet events."""
    return ingest_fleet_batches(tmp_path / "fleet.store", 3,
                                rows_per_batch=400, rows_per_segment=256)


# --------------------------------------------------------------------------- #
# Store layer: generations and snapshots
# --------------------------------------------------------------------------- #
class TestGenerations:
    def test_generation_advances_per_commit(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        assert store.generation == 0
        with store.writer(rows_per_segment=64) as writer:
            writer.append_batch("fleet_events", synthetic_fleet_batch(0, 50))
            writer.flush()
            first = store.generation
            writer.append_batch("fleet_events", synthetic_fleet_batch(1, 50))
            writer.flush()
        assert first == 1
        assert store.generation == 2
        # The log maps each generation to its committed segment prefix.
        assert store.generations() == {1: 1, 2: 2}

    def test_snapshot_pins_generation_across_appends(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        with store.writer(rows_per_segment=64) as writer:
            writer.append_batch("fleet_events", synthetic_fleet_batch(0, 50))
            writer.flush()
            snapshot = store.open_snapshot()
            pinned_rows = snapshot.num_rows()
            pinned = dumps(snapshot.query("fleet_events")
                           .group_by("region").agg(n=("latency_ms", "count"))
                           .aggregate())
            writer.append_batch("fleet_events", synthetic_fleet_batch(1, 50))
            writer.flush()
            store.refresh()
            assert store.num_rows() > pinned_rows
            # The pinned view is immutable: same rows, same aggregate bytes.
            assert snapshot.num_rows() == pinned_rows
            assert dumps(snapshot.query("fleet_events")
                         .group_by("region").agg(n=("latency_ms", "count"))
                         .aggregate()) == pinned

    def test_open_snapshot_at_historical_generation(self, fleet_store):
        generations = sorted(fleet_store.generations())
        past = generations[0]
        snapshot = fleet_store.open_snapshot(generation=past)
        assert snapshot.generation == past
        assert len(snapshot.segments) == fleet_store.generations()[past]
        assert snapshot.num_rows() < fleet_store.num_rows()
        with pytest.raises(KeyError):
            fleet_store.open_snapshot(generation=99999)

    def test_snapshot_matches_reopened_prefix(self, tmp_path):
        # A snapshot at generation g serves exactly what a fresh reader saw
        # when g was the tip: replay the same batches and compare bytes.
        live = ingest_fleet_batches(tmp_path / "live", 3, rows_per_batch=300,
                                    rows_per_segment=128)
        generations = sorted(live.generations())
        target = generations[len(generations) // 2]
        prefix_batches = 0
        reference_root = tmp_path / "ref"
        # Commits happen once per sealed chunk + once per flush; replaying
        # batch-by-batch and stopping when the generation matches finds the
        # batch prefix that produced generation `target`.
        reference = ResultStore(reference_root)
        with reference.writer(rows_per_segment=128) as writer:
            while reference.generation < target:
                writer.append_batch(
                    "fleet_events",
                    synthetic_fleet_batch(prefix_batches, 300))
                writer.flush()
                prefix_batches += 1
        assert reference.generation == target
        snapshot = live.open_snapshot(generation=target)
        assert dumps(report_payload(snapshot, "tail_latency")) == \
            dumps(report_payload(reference, "tail_latency"))

    def test_replacement_commit_resets_log(self, fleet_store):
        before = fleet_store.generation
        compact_store(fleet_store)
        assert fleet_store.generation == before + 1
        # Historical prefixes died with the old segment list.
        assert list(fleet_store.generations()) == [fleet_store.generation]

    def test_generation_log_is_capped(self, tmp_path, monkeypatch):
        import repro.store.store as store_module

        monkeypatch.setattr(store_module, "GENERATION_LOG_CAP", 16)
        store = ResultStore(tmp_path / "s")
        with store.writer(rows_per_segment=8) as writer:
            for index in range(16 + 5):
                writer.append_batch("fleet_events",
                                    synthetic_fleet_batch(index, 2))
                writer.flush()
        log = store.generations()
        assert len(log) == 16
        assert store.generation in log
        # The oldest retained entry is still openable; older ones are gone.
        oldest = min(log)
        store.open_snapshot(generation=oldest)
        with pytest.raises(KeyError):
            store.open_snapshot(generation=oldest - 1)

    def test_legacy_manifest_without_generation(self, fleet_store):
        # Manifests written before this PR carry no generation fields; they
        # adopt sequence as their generation on first read.
        manifest_path = fleet_store.root / "MANIFEST.json"
        data = json.loads(manifest_path.read_text())
        del data["generation"]
        del data["generations"]
        manifest_path.write_text(json.dumps(data))
        reopened = ResultStore(fleet_store.root)
        assert reopened.generation == data["sequence"]
        assert reopened.generations() == {
            data["sequence"]: len(data["segments"])}
        reopened.open_snapshot(generation=reopened.generation)

    def test_info_payload_shape(self, fleet_store):
        payload = fleet_store.info_payload()
        assert payload["generation"] == fleet_store.generation
        assert payload["rows"] == fleet_store.num_rows()
        assert payload["kinds"] == {"fleet_events":
                                    fleet_store.num_rows("fleet_events")}
        assert len(payload["segment_list"]) == len(fleet_store.segments)
        assert json.loads(json.dumps(payload)) == payload


# --------------------------------------------------------------------------- #
# Satellite: concurrent writer/reader + crash-mid-seal
# --------------------------------------------------------------------------- #
class TestConcurrentWriterReader:
    def test_readers_pin_while_writer_seals(self, tmp_path):
        root = tmp_path / "live.store"
        ingest_fleet_batches(root, 1, rows_per_batch=200,
                             rows_per_segment=128)
        reader = ResultStore(root)
        ingest = BackgroundIngest(root, num_batches=6, rows_per_batch=200,
                                  rows_per_segment=128, interval_s=0.002)
        observed: list[tuple[int, str]] = []
        ingest.start()
        for _ in range(20):
            reader.refresh()
            snapshot = reader.open_snapshot()
            observed.append(
                (snapshot.generation, dumps(report_payload(snapshot,
                                                           "tail_latency"))))
        ingest.finish()
        reader.refresh()
        # Every observation replays bit-identically at its pinned generation.
        for generation, payload in observed:
            snapshot = reader.open_snapshot(generation=generation)
            assert dumps(report_payload(snapshot, "tail_latency")) == payload

    def test_crash_mid_seal_leaves_served_generation_intact(self, fleet_store):
        snapshot = fleet_store.open_snapshot()
        served = dumps(report_payload(snapshot, "tail_latency"))
        # A writer dying mid-seal leaves partial segment/cache tmp files and
        # sealed-but-uncommitted segment files; none are manifest-referenced.
        seg_dir = fleet_store.segments_dir
        (seg_dir / "fleet_events-099999.jsonl").write_text('{"torn": ')
        (seg_dir / "fleet_events-099998.colseg.tmp").write_bytes(b"\x00\x01")
        (fleet_store.root / "MANIFEST.json.tmp").write_text('{"format_')
        fleet_store.refresh()
        assert fleet_store.open_snapshot().generation == snapshot.generation
        assert dumps(report_payload(fleet_store.open_snapshot(),
                                    "tail_latency")) == served
        reopened = ResultStore(fleet_store.root)
        assert reopened.generation == snapshot.generation
        assert dumps(report_payload(reopened, "tail_latency")) == served


# --------------------------------------------------------------------------- #
# Satellite: ReportServer staleness across replacement commits
# --------------------------------------------------------------------------- #
class TestReportServerStaleness:
    def test_drop_only_replacement_invalidates(self, tmp_path):
        store = ingest_fleet_batches(tmp_path / "s", 2, rows_per_batch=200,
                                     rows_per_segment=128)
        # fleet_events has no figure tables, so grow an executions store too.
        sweep_store = tmp_path / "s"
        server = ReportServer(ResultStore(sweep_store))
        totals = server.summary()["rows"]
        assert totals["fleet_events"] == 400
        # A retention trim: replacement commit that only *drops* a segment —
        # the regression this satellite fixes (the old rule keyed
        # invalidation on "new segments loaded" and kept stale extracts).
        victim = server.store
        victim.refresh()
        victim._commit_replacement(victim.segments[:-1], victim.sequence)
        assert server.summary()["rows"]["fleet_events"] < 400

    def test_generation_pinned_server_never_reextracts(self, fleet_store):
        snapshot = fleet_store.open_snapshot()
        server = ReportServer(snapshot)
        server.refresh()
        loaded_again = server.refresh()
        assert loaded_again == 0


# --------------------------------------------------------------------------- #
# Serve service + router (in-process)
# --------------------------------------------------------------------------- #
class TestQueryServiceAndRouter:
    @pytest.fixture()
    def stack(self, fleet_store):
        cache = ServeCache()
        manager = SnapshotManager(ResultStore(fleet_store.root), cache=cache)
        service = QueryService(manager, cache=cache)
        return manager, service, Router(service), cache

    def test_health_kinds_stats(self, stack):
        manager, service, router, _ = stack
        status, health = router.dispatch("GET", "/v1/health")
        assert status == 200 and health["status"] == "ok"
        assert health["generation"] == manager.generation
        status, kinds = router.dispatch("GET", "/v1/kinds")
        assert kinds["kinds"]["fleet_events"] == 1200
        status, stats = router.dispatch("GET", "/v1/stats")
        assert stats["served_generation"] == manager.generation
        assert stats["cache"]["segment"]["max_entries"] > 0
        # /v1/stats embeds the exact `store info --json` payload fields.
        for key in ("generation", "rows", "kinds", "segment_list"):
            assert key in stats

    def test_query_matches_offline_engine(self, stack, fleet_store):
        _, service, router, _ = stack
        status, served = router.dispatch(
            "GET", "/v1/query?kind=fleet_events&where=target=cloud"
                   "&group_by=region&agg=latency_ms:mean,p99")
        assert status == 200
        offline = (fleet_store.query("fleet_events")
                   .where("target", "==", "cloud").group_by("region")
                   .agg(latency_ms_mean=("latency_ms", "mean"),
                        latency_ms_p99=("latency_ms", "p99"))
                   .aggregate())
        assert dumps(served["rows"]) == dumps(offline)

    def test_post_query_equals_get_query(self, stack):
        _, _, router, _ = stack
        _, get_payload = router.dispatch(
            "GET", "/v1/query?kind=fleet_events&where=latency_ms<20"
                   "&agg=energy_mj:sum")
        body = json.dumps({"kind": "fleet_events",
                           "where": [["latency_ms", "<", 20]],
                           "agg": [["energy_mj", "sum"]]}).encode()
        _, post_payload = router.dispatch("POST", "/v1/query", body)
        assert dumps(get_payload) == dumps(post_payload)

    def test_report_equals_offline_payload(self, stack, fleet_store):
        _, _, router, _ = stack
        for table in ("summary", "tail_latency", "drain", "latency_ecdf"):
            status, served = router.dispatch("GET", f"/v1/report/{table}")
            assert status == 200
            assert dumps(served) == dumps(report_payload(fleet_store, table))

    def test_result_cache_hits_on_repeat(self, stack):
        _, _, router, cache = stack
        target = "/v1/query?kind=fleet_events&group_by=device_name&agg=latency_ms:p90"
        _, first = router.dispatch("GET", target)
        hits_before = cache.stats()["result"]["hits"]
        _, second = router.dispatch("GET", target)
        assert cache.stats()["result"]["hits"] == hits_before + 1
        assert dumps(first) == dumps(second)

    def test_segment_cache_survives_generation_advance(self, stack):
        manager, service, router, cache = stack
        target = "/v1/query?kind=fleet_events&group_by=region&agg=discharge_mah:sum"
        _, first = router.dispatch("GET", target)
        old_segments = len(manager.store.segments)
        assert first["stats"]["segments_cached"] == 0
        # New commits arrive; the result tier is evicted but the segment tier
        # answers every previously seen segment without a scan.
        with ResultStore(manager.store.root).writer(
                rows_per_segment=128) as writer:
            writer.append_batch("fleet_events", synthetic_fleet_batch(7, 200))
            writer.flush()
        assert manager.poll() is True
        _, second = router.dispatch("GET", target)
        assert second["generation"] > first["generation"]
        assert second["stats"]["segments_cached"] == old_segments
        # And the sums still equal a cold offline evaluation.
        offline = (ResultStore(manager.store.root).query("fleet_events")
                   .group_by("region").agg(discharge_mah_sum=("discharge_mah",
                                                              "sum"))
                   .aggregate())
        assert dumps(second["rows"]) == dumps(offline)

    def test_compaction_clears_caches(self, stack):
        manager, _, router, cache = stack
        router.dispatch("GET", "/v1/report/tail_latency")
        assert cache.stats()["result"]["entries"] == 1
        compact_store(ResultStore(manager.store.root))
        assert manager.poll() is True
        assert manager.invalidations == 1
        assert cache.stats()["result"]["entries"] == 0
        assert cache.stats()["segment"]["entries"] == 0

    def test_error_statuses(self, stack):
        _, _, router, _ = stack
        assert router.dispatch("GET", "/v1/nope")[0] == 404
        assert router.dispatch("GET", "/v1/report/bogus")[0] == 404
        assert router.dispatch("POST", "/v1/health")[0] == 405
        assert router.dispatch("GET", "/v1/query?where=latency<")[0] == 400
        assert router.dispatch("GET", "/v1/query?kind=bogus")[0] == 400
        assert router.dispatch("POST", "/v1/query", b"{nope")[0] == 400
        status, payload = router.dispatch(
            "GET", "/v1/query?where=no_such_column=1&kind=fleet_events")
        assert status == 400 and "error" in payload

    def test_uncached_service_still_serves(self, fleet_store):
        manager = SnapshotManager(ResultStore(fleet_store.root), cache=None)
        router = Router(QueryService(manager, cache=None))
        status, payload = router.dispatch("GET", "/v1/report/summary")
        assert status == 200
        assert dumps(payload) == dumps(report_payload(fleet_store, "summary"))
        status, stats = router.dispatch("GET", "/v1/stats")
        assert stats["cache"] is None


# --------------------------------------------------------------------------- #
# HTTP server (real sockets)
# --------------------------------------------------------------------------- #
class TestServeHTTP:
    @pytest.fixture()
    def server(self, fleet_store):
        app = ServeApp(fleet_store.root, port=0, refresh_s=0.05)
        with ServerThread(app) as thread:
            yield thread

    def get(self, url):
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())

    def test_endpoints_over_http(self, server, fleet_store):
        status, health = self.get(server.url + "/v1/health")
        assert status == 200 and health["rows"] == 1200
        status, report = self.get(server.url + "/v1/report/tail_latency")
        assert dumps(report) == dumps(report_payload(fleet_store,
                                                     "tail_latency"))

    def test_post_query_over_http(self, server, fleet_store):
        body = json.dumps({"kind": "fleet_events", "group_by": ["backend"],
                           "agg": ["latency_ms:median"]}).encode()
        request = urllib.request.Request(
            server.url + "/v1/query", data=body,
            headers={"Content-Type": "application/json"}, method="POST")
        with urllib.request.urlopen(request, timeout=10) as response:
            payload = json.loads(response.read())
        offline = (fleet_store.query("fleet_events").group_by("backend")
                   .agg(latency_ms_median=("latency_ms", "median"))
                   .aggregate())
        assert dumps(payload["rows"]) == dumps(offline)

    def test_keep_alive_reuses_connection(self, server):
        host, port = server.url.removeprefix("http://").split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            for _ in range(3):
                connection.request("GET", "/v1/health")
                response = connection.getresponse()
                assert response.status == 200
                json.loads(response.read())
        finally:
            connection.close()

    def test_http_error_body(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.get(server.url + "/v1/report/bogus")
        assert excinfo.value.code == 404
        assert "error" in json.loads(excinfo.value.read())

    def test_serves_fresh_generation_during_live_ingest(self, tmp_path):
        root = tmp_path / "live.store"
        ingest_fleet_batches(root, 1, rows_per_batch=150,
                             rows_per_segment=128)
        app = ServeApp(root, port=0, refresh_s=0.02)
        with ServerThread(app) as server:
            sampled = []
            ingest = BackgroundIngest(root, num_batches=5,
                                      rows_per_batch=150,
                                      rows_per_segment=128,
                                      interval_s=0.02)
            ingest.start()
            for _ in range(12):
                sampled.append(self.get(server.url
                                        + "/v1/report/tail_latency")[1])
            ingest.finish()
            deadline = threading.Event()
            for _ in range(100):  # wait for the worker to reach the tip
                if self.get(server.url + "/v1/health")[1]["rows"] == 900:
                    break
                deadline.wait(0.05)
            assert self.get(server.url + "/v1/health")[1]["rows"] == 900
        # Each sampled response replays bit-identically at its generation.
        store = ResultStore(root)
        for payload in sampled:
            snapshot = store.open_snapshot(generation=payload["generation"])
            assert dumps(report_payload(snapshot, "tail_latency")) == \
                dumps(payload)


# --------------------------------------------------------------------------- #
# Satellite: CLI `store info --json` / `store report --json`
# --------------------------------------------------------------------------- #
class TestServeCLI:
    def test_store_info_json(self, fleet_store, capsys):
        from repro.cli import main

        assert main(["store", "info", str(fleet_store.root), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == fleet_store.info_payload()
        assert payload["generation"] == fleet_store.generation
        assert payload["kinds"]["fleet_events"] == 1200

    def test_store_info_json_verify(self, fleet_store, capsys):
        from repro.cli import main

        assert main(["store", "info", str(fleet_store.root), "--json",
                     "--verify"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verified_segments"] == len(fleet_store.segments)

    def test_store_report_json_matches_payload(self, fleet_store, capsys):
        from repro.cli import main

        for table in ("summary", "tail_latency", "drain"):
            assert main(["store", "report", str(fleet_store.root),
                         "--table", table, "--json"]) == 0
            printed = json.loads(capsys.readouterr().out)
            assert dumps(printed) == dumps(report_payload(fleet_store, table))

    def test_store_report_human_tables(self, fleet_store, capsys):
        from repro.cli import main

        assert main(["store", "report", str(fleet_store.root),
                     "--table", "tail_latency"]) == 0
        assert "p999 ms" in capsys.readouterr().out
        assert main(["store", "report", str(fleet_store.root),
                     "--table", "drain"]) == 0
        assert "median drain" in capsys.readouterr().out
