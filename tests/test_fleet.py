"""Tests for the fleet traffic simulator: population, arrivals, routing,
vectorised-vs-reference equivalence, determinism and store ingestion."""

import numpy as np
import pytest

from repro.core.scenarios import STANDARD_SCENARIOS
from repro.devices.device import DEV_BOARDS, PHONES
from repro.fleet import (
    CloudProfile,
    FleetEvent,
    FleetSimulator,
    FleetSpec,
    RoutingPolicy,
    battery_drain_ecdf,
    cloud_api_for_scenario,
    derive_user_seed,
    generate_arrivals,
    offload_summary,
    simulate_user_naive,
    tail_latency_table,
    zoo_population,
)
from repro.store import ResultStore

#: A compact population spec reused across the module.
NUM_USERS = 16
HORIZON_S = 4 * 3600.0


@pytest.fixture(scope="module")
def population():
    return zoo_population()


@pytest.fixture(scope="module")
def spec(population):
    return FleetSpec(graphs_with_tasks=population, num_users=NUM_USERS,
                     horizon_s=HORIZON_S, seed=1)


@pytest.fixture(scope="module")
def traces(spec):
    return FleetSimulator(spec, max_workers=1).collect()


class TestPopulation:
    def test_user_seed_depends_only_on_coordinates(self):
        assert derive_user_seed(0, 3) == derive_user_seed(0, 3)
        assert derive_user_seed(0, 3) != derive_user_seed(0, 4)
        assert derive_user_seed(0, 3) != derive_user_seed(1, 3)

    def test_materialize_is_deterministic(self, spec):
        user_a, plan_a = spec.materialize(5)
        user_b, plan_b = spec.materialize(5)
        assert user_a == user_b
        assert np.array_equal(plan_a.times, plan_b.times)
        assert np.array_equal(plan_a.noise, plan_b.noise)
        assert np.array_equal(plan_a.rtt_ms, plan_b.rtt_ms)
        assert plan_a.start_battery_fraction == plan_b.start_battery_fraction

    def test_users_draw_valid_attributes(self, spec):
        for user_id in range(spec.num_users):
            user, plan = spec.materialize(user_id)
            assert user.device in spec.devices
            assert user.scenario in spec.eligible_scenarios
            assert user.scenario.applies_to(user.task, user.graph.modality)
            low, high = spec.start_battery_range
            assert low <= plan.start_battery_fraction <= high
            assert np.all(np.diff(plan.times) >= 0)
            assert plan.noise.shape == plan.times.shape == plan.rtt_ms.shape

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError, match="no scenario matches"):
            FleetSpec(graphs_with_tasks=(), num_users=4)

    def test_rejects_batteryless_devices(self, population):
        with pytest.raises(ValueError, match="battery"):
            FleetSpec(graphs_with_tasks=population, num_users=4,
                      devices=DEV_BOARDS)  # Q855/Q888 are bench-powered

    def test_zoo_population_covers_every_scenario(self, spec):
        assert len(spec.eligible_scenarios) == len(STANDARD_SCENARIOS)


class TestArrivals:
    def test_arrivals_sorted_within_horizon(self, population):
        rng = np.random.default_rng(1)
        graph, _ = population[2]
        times = generate_arrivals(STANDARD_SCENARIOS[2], graph, rng, 86400.0)
        assert times.size > 0
        assert np.all(times >= 0) and np.all(times < 86400.0)
        assert np.all(np.diff(times) >= 0)

    def test_segmentation_ticks_at_frame_rate(self, population):
        rng = np.random.default_rng(2)
        graph = next(g for g, t in population if t == "semantic segmentation")
        scenario = next(s for s in STANDARD_SCENARIOS if s.name == "Segm.")
        times = generate_arrivals(scenario, graph, rng, 86400.0)
        gaps = np.diff(times)
        in_session = gaps[gaps < 1.0]
        assert in_session.size > 0
        assert np.allclose(in_session, 1.0 / 15.0)

    def test_scenario_arrival_rates_derive_from_counts(self, population):
        audio = STANDARD_SCENARIOS[0]
        graph = next(g for g, t in population if t == "sound recognition")
        rate = audio.arrival_rate_hz(graph)
        assert rate == pytest.approx(
            audio.inference_count(graph) / audio.session_seconds)
        typing = STANDARD_SCENARIOS[1]
        assert typing.arrival_rate_hz(graph) == pytest.approx(275 / 600)


class TestRouting:
    def test_scenario_cloud_apis_are_fig15_categories(self):
        for scenario in STANDARD_SCENARIOS:
            assert cloud_api_for_scenario(scenario)

    def test_capability_offload(self):
        policy = RoutingPolicy()
        assert policy.offloads_for_capability(100.0, 66.7)
        assert not policy.offloads_for_capability(10.0, 66.7)

    def test_battery_saver_threshold(self):
        policy = RoutingPolicy(battery_saver_threshold=0.3)
        assert policy.offloads_for_battery(0.29)
        assert not policy.offloads_for_battery(0.30)

    def test_cloud_latency_includes_transfer(self):
        cloud = CloudProfile(uplink_mbps=8.0, service_ms=40.0)
        latency = cloud.latency_ms(60.0, payload_bytes=100_000)
        assert latency == pytest.approx(60.0 + 40.0 + 100.0)

    def test_heavy_model_offloads_everywhere(self, spec, traces):
        """The full-size unet misses the frame deadline on every phone."""
        heavy = [t for t in traces
                 if t.user.graph.name == "unet_lite"
                 and t.user.scenario.name == "Segm."]
        for trace in heavy:
            assert trace.num_offloaded == trace.num_events


class TestSimulatorEquivalence:
    def test_vectorised_loop_matches_reference(self, spec):
        simulator = FleetSimulator(spec, max_workers=1)
        for user_id in range(spec.num_users):
            fast = simulator.simulate_user(user_id)
            slow = simulate_user_naive(spec, user_id)
            assert np.array_equal(fast.offloaded, slow.offloaded)
            for name in ("latency_ms", "energy_mj", "throttle",
                         "battery_fraction", "discharge_mah"):
                np.testing.assert_allclose(
                    getattr(fast, name), getattr(slow, name),
                    rtol=1e-9, atol=1e-9, err_msg=f"user {user_id}: {name}")

    def test_battery_saver_switch_matches_reference(self, population):
        """Force the battery switch: on-device video calls, start level just
        above the saver threshold."""
        light_segmentation = population[2]
        spec = FleetSpec(
            graphs_with_tasks=(light_segmentation,), num_users=10,
            horizon_s=86400.0,
            policy=RoutingPolicy(battery_saver_threshold=0.6),
            start_battery_range=(0.602, 0.615), seed=7)
        simulator = FleetSimulator(spec, max_workers=1)
        switched = 0
        for user_id in range(spec.num_users):
            fast = simulator.simulate_user(user_id)
            slow = simulate_user_naive(spec, user_id)
            assert np.array_equal(fast.offloaded, slow.offloaded)
            np.testing.assert_allclose(fast.battery_fraction,
                                       slow.battery_fraction,
                                       rtol=1e-9, atol=1e-9)
            if 0 < fast.num_offloaded < fast.num_events:
                switched += 1
                # Once under the threshold, every later event is offloaded.
                first = int(np.argmax(fast.offloaded))
                assert fast.offloaded[first:].all()
        assert switched > 0, "spec should trigger at least one battery switch"

    def test_throttling_engages_under_sustained_load(self, traces):
        throttled = [t for t in traces if t.num_events
                     and float(t.throttle.min()) < 0.99]
        assert throttled, "15 FPS segmentation should heat some device"
        for trace in throttled:
            floor = 0.69  # lowest tier floor, with a little float slack
            assert float(trace.throttle.min()) >= floor


class TestDeterminism:
    def test_bit_identical_across_worker_counts(self, spec, traces):
        threaded = FleetSimulator(spec, max_workers=4).collect()
        chunked = FleetSimulator(spec, max_workers=3, chunk_size=2).collect()
        for other in (threaded, chunked):
            assert len(other) == len(traces)
            for a, b in zip(traces, other):
                assert a.user == b.user
                for name in ("times_s", "latency_ms", "energy_mj", "throttle",
                             "battery_fraction", "discharge_mah", "offloaded"):
                    assert np.array_equal(getattr(a, name), getattr(b, name))

    def test_bit_identical_on_process_pool(self, spec, traces):
        processes = FleetSimulator(spec, max_workers=2,
                                   use_processes=True).collect()
        assert len(processes) == len(traces)
        for a, b in zip(traces, processes):
            assert np.array_equal(a.latency_ms, b.latency_ms)
            assert np.array_equal(a.battery_fraction, b.battery_fraction)
            assert np.array_equal(a.offloaded, b.offloaded)

    def test_traces_stream_in_user_order(self, traces):
        assert [t.user.user_id for t in traces] == list(range(NUM_USERS))


class TestStoreIngestion:
    def test_run_to_store_round_trips(self, spec, traces, tmp_path):
        store = ResultStore(tmp_path / "fleet.store")
        rows = FleetSimulator(spec, max_workers=2).run_to_store(
            store, rows_per_segment=512)
        total = sum(t.num_events for t in traces)
        assert rows == total
        assert store.num_rows("fleet_events") == total
        assert len(store.segments) >= 2  # actually sharded at this size
        assert store.verify_integrity() == len(store.segments)

        # The persisted stream equals the in-memory traces, row for row.
        persisted = store.iter_rows("fleet_events")
        for trace in traces:
            for row in trace.rows():
                assert next(persisted) == row
        assert next(persisted, None) is None

        # Round-trip through the typed deserialiser.
        events = store.query("fleet_events").where(user_id=0).objects()
        assert all(isinstance(event, FleetEvent) for event in events)
        assert len(events) == traces[0].num_events

    def test_fleet_reports_from_store(self, spec, tmp_path):
        store = ResultStore(tmp_path / "reports.store")
        FleetSimulator(spec, max_workers=1).run_to_store(store)

        table = tail_latency_table(store, group_by="device_name")
        assert table
        for row in table:
            assert row["events"] > 0
            assert row["p50_ms"] <= row["p90_ms"] <= row["p99_ms"] <= row["p999_ms"]

        by_scenario = tail_latency_table(store, group_by="scenario",
                                         target=None)
        assert sum(r["events"] for r in by_scenario) == store.num_rows("fleet_events")

        ecdf = battery_drain_ecdf(store)
        assert ecdf.values[0] >= 0.0

        summary = offload_summary(store)
        assert summary["events"] == store.num_rows("fleet_events")
        assert 0.0 <= summary["offload_fraction"] <= 1.0
        assert sum(e["requests"] for e in summary["by_api"].values()) \
            == summary["offloaded"]

    def test_empty_store_reports_raise(self, tmp_path):
        store = ResultStore(tmp_path / "empty.store")
        with pytest.raises(ValueError):
            battery_drain_ecdf(store)


class TestTraceSemantics:
    def test_energy_battery_consistency(self, traces):
        for trace in traces:
            if not trace.num_events:
                continue
            voltage = trace.user.device.battery.voltage
            np.testing.assert_allclose(
                trace.discharge_mah,
                trace.energy_mj / (voltage * 3600.0), rtol=1e-12)
            assert np.all(np.diff(trace.battery_fraction) <= 1e-15)
            assert np.all(trace.battery_fraction >= 0.0)

    def test_cloud_events_cost_radio_not_compute(self, spec, traces):
        cloud = spec.policy.cloud
        for trace in traces:
            if not trace.num_offloaded:
                continue
            offloaded = trace.offloaded
            np.testing.assert_allclose(
                trace.energy_mj[offloaded],
                cloud.radio_power_watts * trace.latency_ms[offloaded],
                rtol=1e-12)
            assert np.all(trace.throttle[offloaded] == 1.0)

    def test_phones_only_default_population(self, traces):
        assert {t.user.device.name for t in traces} \
            <= {device.name for device in PHONES}
