"""Unit tests for the ECDF and statistics helpers."""

import numpy as np
import pytest

from repro.analysis import Ecdf, geometric_mean, kernel_density, remove_outliers_iqr, summary_statistics


class TestEcdf:
    def test_basic_properties(self):
        ecdf = Ecdf.from_samples([3.0, 1.0, 2.0, 4.0])
        assert ecdf(0.5) == 0.0
        assert ecdf(2.0) == 0.5
        assert ecdf(4.0) == 1.0
        assert ecdf.median == pytest.approx(2.5)
        assert ecdf.mean == pytest.approx(2.5)

    def test_quantiles(self):
        ecdf = Ecdf.from_samples(range(1, 101))
        assert ecdf.quantile(0.9) == pytest.approx(90.1, abs=1.0)
        with pytest.raises(ValueError):
            ecdf.quantile(1.5)

    def test_curve_is_monotone(self):
        ecdf = Ecdf.from_samples(np.random.default_rng(0).lognormal(size=50))
        xs, ys = ecdf.curve(num_points=20)
        assert list(ys) == sorted(ys)
        assert len(xs) == len(ys) == 20

    def test_requires_samples(self):
        with pytest.raises(ValueError):
            Ecdf(())
        with pytest.raises(ValueError):
            Ecdf.from_samples([1.0]).curve(num_points=1)


class TestSummaryStatistics:
    def test_summary_values(self):
        summary = summary_statistics([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.std > 0

    def test_single_value(self):
        summary = summary_statistics([7.0])
        assert summary.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summary_statistics([])


class TestOutliersAndMeans:
    def test_remove_outliers(self):
        values = [1.0] * 20 + [1000.0]
        cleaned = remove_outliers_iqr(values)
        assert 1000.0 not in cleaned
        assert len(cleaned) == 20
        assert remove_outliers_iqr([]) == []

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 10.0, 100.0]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])


class TestKernelDensity:
    def test_density_over_samples(self):
        xs, ys = kernel_density(np.random.default_rng(1).normal(5.0, 1.0, size=200))
        assert len(xs) == len(ys) == 100
        assert max(ys) > 0
        peak_x = xs[int(np.argmax(ys))]
        assert 3.5 < peak_x < 6.5

    def test_log_scale_density(self):
        samples = np.random.default_rng(2).lognormal(mean=2.0, sigma=1.0, size=200)
        xs, ys = kernel_density(samples, log_scale=True)
        assert min(xs) > 0

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            kernel_density([1.0])
        with pytest.raises(ValueError):
            kernel_density([0.0, 1.0], log_scale=True)
