"""Unit tests for the ECDF and statistics helpers."""

import numpy as np
import pytest

from repro.analysis import (Ecdf, exponential_decay_scan, geometric_mean,
                            kernel_density, remove_outliers_iqr,
                            summary_statistics)


class TestEcdf:
    def test_basic_properties(self):
        ecdf = Ecdf.from_samples([3.0, 1.0, 2.0, 4.0])
        assert ecdf(0.5) == 0.0
        assert ecdf(2.0) == 0.5
        assert ecdf(4.0) == 1.0
        assert ecdf.median == pytest.approx(2.5)
        assert ecdf.mean == pytest.approx(2.5)

    def test_quantiles(self):
        ecdf = Ecdf.from_samples(range(1, 101))
        assert ecdf.quantile(0.9) == pytest.approx(90.1, abs=1.0)
        with pytest.raises(ValueError):
            ecdf.quantile(1.5)

    def test_curve_is_monotone(self):
        ecdf = Ecdf.from_samples(np.random.default_rng(0).lognormal(size=50))
        xs, ys = ecdf.curve(num_points=20)
        assert list(ys) == sorted(ys)
        assert len(xs) == len(ys) == 20

    def test_requires_samples(self):
        with pytest.raises(ValueError):
            Ecdf(())
        with pytest.raises(ValueError):
            Ecdf.from_samples([1.0]).curve(num_points=1)


class TestSummaryStatistics:
    def test_summary_values(self):
        summary = summary_statistics([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.std > 0

    def test_single_value(self):
        summary = summary_statistics([7.0])
        assert summary.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summary_statistics([])


class TestOutliersAndMeans:
    def test_remove_outliers(self):
        values = [1.0] * 20 + [1000.0]
        cleaned = remove_outliers_iqr(values)
        assert 1000.0 not in cleaned
        assert len(cleaned) == 20
        assert remove_outliers_iqr([]) == []

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 10.0, 100.0]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])


class TestKernelDensity:
    def test_density_over_samples(self):
        xs, ys = kernel_density(np.random.default_rng(1).normal(5.0, 1.0, size=200))
        assert len(xs) == len(ys) == 100
        assert max(ys) > 0
        peak_x = xs[int(np.argmax(ys))]
        assert 3.5 < peak_x < 6.5

    def test_log_scale_density(self):
        samples = np.random.default_rng(2).lognormal(mean=2.0, sigma=1.0, size=200)
        xs, ys = kernel_density(samples, log_scale=True)
        assert min(xs) > 0

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            kernel_density([1.0])
        with pytest.raises(ValueError):
            kernel_density([0.0, 1.0], log_scale=True)


class TestEcdfQuantiles:
    def test_vectorised_matches_scalar(self):
        ecdf = Ecdf.from_samples(np.random.default_rng(3).lognormal(size=200))
        qs = (0.5, 0.9, 0.99, 0.999)
        assert ecdf.quantiles(qs) == tuple(ecdf.quantile(q) for q in qs)

    def test_validation(self):
        with pytest.raises(ValueError):
            Ecdf.from_samples([1.0]).quantiles((0.5, 1.5))


class TestExponentialDecayScan:
    @staticmethod
    def _reference(z, b, initial):
        import math

        values, state = [], initial
        for decay, add in zip(z, np.broadcast_to(b, z.shape)):
            state = state * math.exp(-decay) + add
            values.append(state)
        return np.array(values)

    def test_matches_sequential_recurrence(self):
        rng = np.random.default_rng(0)
        for scale in (0.01, 1.0, 10.0, 50.0):
            z = rng.exponential(scale, 3000)
            b = rng.uniform(0.0, 2.0, 3000)
            got = exponential_decay_scan(z, b, initial=0.5)
            np.testing.assert_allclose(got, self._reference(z, b, 0.5),
                                       rtol=1e-9, atol=1e-12)

    def test_scalar_input_broadcasts(self):
        z = np.zeros(4)
        np.testing.assert_allclose(exponential_decay_scan(z, 1.0),
                                   [1.0, 2.0, 3.0, 4.0])

    def test_huge_gaps_reset_within_precision(self):
        """A gap of many time constants wipes the carried state."""
        z = np.array([0.0, 1000.0, 0.0])
        got = exponential_decay_scan(z, 5.0)
        assert got[0] == pytest.approx(5.0)
        assert got[1] == pytest.approx(5.0, rel=1e-12)  # carry fully decayed
        assert got[2] == pytest.approx(10.0, rel=1e-12)

    def test_long_dense_stream_stays_finite(self):
        """Accumulated decay far past the float64 exp range must not overflow."""
        rng = np.random.default_rng(1)
        z = rng.uniform(0.5, 2.0, 20000)  # total ~25k log-decay units
        got = exponential_decay_scan(z, 1.0)
        assert np.all(np.isfinite(got))
        tail_reference = self._reference(z[-50:], 1.0, got[-51])
        np.testing.assert_allclose(got[-50:], tail_reference, rtol=1e-9)

    def test_empty_and_validation(self):
        assert exponential_decay_scan(np.empty(0), 1.0).size == 0
        with pytest.raises(ValueError):
            exponential_decay_scan(np.array([-0.1]), 1.0)
        with pytest.raises(ValueError):
            exponential_decay_scan(np.zeros((2, 2)), 1.0)


class TestTimeBinIndices:
    def test_floor_division_convention(self):
        from repro.analysis.stats import time_bin_indices

        bins = time_bin_indices([0.0, 899.99, 900.0, 1800.0], 900.0)
        assert bins.dtype == np.int64
        assert list(bins) == [0, 0, 1, 2]

    def test_clip_to_num_bins(self):
        from repro.analysis.stats import time_bin_indices

        bins = time_bin_indices([-1.0, 100.0, 1e9], 10.0, num_bins=5)
        assert list(bins) == [0, 4, 4]

    def test_validation(self):
        from repro.analysis.stats import time_bin_indices

        with pytest.raises(ValueError):
            time_bin_indices([1.0], 0.0)
        with pytest.raises(ValueError):
            time_bin_indices([1.0], 1.0, num_bins=0)
