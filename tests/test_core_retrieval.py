"""Unit tests for the gaugeNN retrieval stages: crawler, extractor, validator."""

import pytest

from repro.android.apk import ApkBuilder
from repro.android.dex import DexFile
from repro.android.manifest import AndroidManifest
from repro.core.crawler import Crawler
from repro.core.extractor import CandidateFile, ModelExtractor
from repro.core.validator import ModelValidator
from repro.dnn.zoo import blazeface, mobilenet_v1
from repro.formats.serialize import serialize_model


def _package_with_models(frameworks=("tflite",), extra_assets=None):
    builder = ApkBuilder(AndroidManifest(package="com.test.mlapp"), DexFile())
    for index, framework in enumerate(frameworks):
        graph = blazeface(name=f"face_detector_{index}", weight_seed=index)
        artifact = serialize_model(graph, framework, f"face_detector_{index}")
        for name, data in artifact.files.items():
            builder.add_asset(f"models/{name}", data)
    for path, data in (extra_assets or {}).items():
        builder.add_asset(path, data)
    builder.add_native_library("libtensorflowlite_jni.so")
    return builder.build()


class TestCrawler:
    def test_crawl_covers_all_categories(self, store):
        crawler = Crawler(store)
        result = crawler.crawl("2021")
        assert result.total_apps == store.snapshot("2021").total_apps
        assert set(result.by_category()) <= set(store.snapshot("2021").categories())

    def test_per_category_limit(self, store):
        crawler = Crawler(store, per_category_limit=5)
        result = crawler.crawl("2021")
        assert all(len(apps) <= 5 for apps in result.by_category().values())

    def test_limit_validation(self, store):
        with pytest.raises(ValueError):
            Crawler(store, per_category_limit=0)

    def test_single_category_crawl(self, store):
        crawler = Crawler(store)
        result = crawler.crawl("2021", categories=["COMMUNICATION"])
        assert set(result.by_category()) == {"COMMUNICATION"}


class TestExtractor:
    def test_extracts_candidates_and_libraries(self):
        extraction = ModelExtractor().extract(_package_with_models())
        assert extraction.candidate_count >= 1
        assert "libtensorflowlite_jni.so" in extraction.native_libraries
        assert extraction.dex_data is not None
        assert extraction.apk_size_bytes > 0

    def test_ignores_resources(self):
        package = _package_with_models(extra_assets={})
        extraction = ModelExtractor().extract(package)
        paths = [f.path for group in extraction.candidate_groups for f in group.files]
        assert not any(path.startswith("apk/res/") for path in paths)

    def test_groups_caffe_companions(self):
        package = _package_with_models(frameworks=("caffe",))
        extraction = ModelExtractor().extract(package)
        caffe_groups = [
            group for group in extraction.candidate_groups
            if any(f.path.endswith(".caffemodel") for f in group.files)
        ]
        assert caffe_groups
        assert len(caffe_groups[0].files) == 2

    def test_candidate_file_helpers(self):
        candidate = CandidateFile(path="apk/assets/models/detector.tflite",
                                  data=b"1234", source="apk")
        assert candidate.file_name == "detector.tflite"
        assert candidate.extension == ".tflite"
        assert candidate.stem == "detector"
        assert candidate.size_bytes == 4

    def test_non_candidate_extensions_skipped(self):
        package = _package_with_models(
            extra_assets={"textures/background.png": b"\x89PNG", "data/words.txt": b"hello"})
        extraction = ModelExtractor().extract(package)
        names = [f.file_name for group in extraction.candidate_groups for f in group.files]
        assert "background.png" not in names
        assert "words.txt" not in names


class TestValidator:
    def test_validates_real_models(self):
        extraction = ModelExtractor().extract(_package_with_models(("tflite", "caffe")))
        validated = ModelValidator().validate_many(extraction.candidate_groups)
        frameworks = {model.framework for model in validated}
        assert frameworks == {"tflite", "caffe"}
        for model in validated:
            assert model.graph.total_parameters() > 0
            assert model.checksum

    def test_rejects_encrypted_models(self):
        package = _package_with_models(
            extra_assets={"models/encrypted.tflite": bytes(range(256)) * 8})
        extraction = ModelExtractor().extract(package)
        validated = ModelValidator().validate_many(extraction.candidate_groups)
        assert all("encrypted" not in name for model in validated
                   for name in model.artifact.file_names)

    def test_duplicate_models_share_checksums(self):
        graph = mobilenet_v1(weight_seed=9)
        artifact_a = serialize_model(graph, "tflite", "classifier_a")
        artifact_b = serialize_model(graph, "tflite", "classifier_b")
        builder = ApkBuilder(AndroidManifest(package="com.dup.app"), DexFile())
        for artifact in (artifact_a, artifact_b):
            for name, data in artifact.files.items():
                builder.add_asset(f"models/{name}", data)
        extraction = ModelExtractor().extract(builder.build())
        validated = ModelValidator().validate_many(extraction.candidate_groups)
        assert len(validated) == 2
        # Same weights but different file names: the graph checksum matches,
        # which is what the uniqueness analysis relies on.
        assert validated[0].graph.weights_checksum() == validated[1].graph.weights_checksum()

    def test_structure_only_group_rejected(self):
        graph = blazeface(weight_seed=2)
        artifact = serialize_model(graph, "caffe")
        prototxt_name = next(n for n in artifact.files if n.endswith(".prototxt"))
        group_files = (
            CandidateFile(path=f"apk/assets/{prototxt_name}",
                          data=artifact.files[prototxt_name], source="apk"),
        )
        from repro.core.extractor import CandidateGroup

        assert ModelValidator().validate_group(CandidateGroup(files=group_files)) is None
