"""Tests for the declarative parallel sweep runner."""

import pytest

from repro.devices.device import DEV_BOARDS, device_by_name
from repro.devices.scheduler import ThreadConfig
from repro.dnn.zoo import autocomplete_lstm, blazeface, mobilenet_v1
from repro.runtime import Backend, SweepRunner, SweepSpec, derive_job_seed


@pytest.fixture(scope="module")
def graphs():
    return (blazeface(weight_seed=2), mobilenet_v1(weight_seed=2),
            autocomplete_lstm(weight_seed=2))


@pytest.fixture(scope="module")
def spec(graphs):
    return SweepSpec(
        devices=(device_by_name("Q845"), device_by_name("S21")),
        graphs=graphs,
        backends=(Backend.CPU, Backend.XNNPACK, Backend.GPU),
        batch_sizes=(1, 4),
        thread_configs=(None, ThreadConfig(4)),
        num_inferences=3,
        seed=7,
    )


class TestSweepSpec:
    def test_expansion_covers_product(self, spec):
        jobs = list(spec.expand())
        assert len(jobs) == spec.num_combinations == 2 * 3 * 3 * 2 * 2

    def test_rejects_empty_axes(self, graphs):
        with pytest.raises(ValueError):
            SweepSpec(devices=(), graphs=graphs)
        with pytest.raises(ValueError):
            SweepSpec(devices=(device_by_name("Q845"),), graphs=graphs,
                      batch_sizes=())
        with pytest.raises(ValueError):
            SweepSpec(devices=(device_by_name("Q845"),), graphs=graphs,
                      batch_sizes=(0,))

    def test_accepts_backend_strings(self, graphs):
        spec = SweepSpec(devices=(device_by_name("Q845"),), graphs=graphs,
                         backends=("cpu", "gpu"))
        assert spec.backends == (Backend.CPU, Backend.GPU)

    def test_job_seeds_depend_on_coordinates_only(self, spec):
        seeds = [job.seed for job in spec.expand()]
        assert len(set(seeds)) == len(seeds)  # all distinct
        assert seeds == [job.seed for job in spec.expand()]  # reproducible
        job = next(spec.expand())
        assert job.seed == derive_job_seed(
            spec.seed, job.device.name, job.graph.name, job.backend,
            job.batch_size, "auto")


class TestPruning:
    def test_snpe_pruned_on_non_qualcomm(self, graphs):
        spec = SweepSpec(devices=(device_by_name("A20"),), graphs=graphs,
                         backends=(Backend.SNPE_DSP,))
        assert SweepRunner(spec).compatible_jobs() == []

    def test_recurrent_model_pruned_on_gpu(self, graphs):
        spec = SweepSpec(devices=(device_by_name("Q845"),), graphs=graphs,
                         backends=(Backend.GPU,))
        jobs = SweepRunner(spec).compatible_jobs()
        assert jobs  # conv models survive
        assert all(job.graph.name != autocomplete_lstm().name for job in jobs)

    def test_pruning_matches_executor_support(self, spec):
        from repro.runtime import Executor

        pruned = {(j.device.name, j.graph.name, j.backend, j.batch_size,
                   j.thread_label)
                  for j in SweepRunner(spec).compatible_jobs()}
        expected = set()
        for job in spec.expand():
            executor = Executor(job.device)
            if executor.supports(job.graph, job.backend):
                expected.add((job.device.name, job.graph.name, job.backend,
                              job.batch_size, job.thread_label))
        assert pruned == expected


class TestDeterminism:
    def test_results_identical_across_worker_counts(self, spec):
        serial = SweepRunner(spec, max_workers=1).run()
        parallel = SweepRunner(spec, max_workers=6).run()
        assert serial == parallel
        assert len(serial) > 0

    def test_results_identical_across_chunk_sizes(self, spec):
        baseline = SweepRunner(spec, max_workers=1).run()
        for chunk_size in (1, 3, 7, 1000):
            chunked = SweepRunner(spec, max_workers=4,
                                  chunk_size=chunk_size).run()
            assert chunked == baseline

    def test_results_identical_with_process_pool(self, spec):
        baseline = SweepRunner(spec, max_workers=1).run()
        processes = SweepRunner(spec, max_workers=2, use_processes=True,
                                chunk_size=8).run()
        assert processes == baseline

    def test_rejects_invalid_chunk_size(self, spec):
        with pytest.raises(ValueError):
            SweepRunner(spec, chunk_size=0)

    def test_job_results_independent_of_spec_subset(self, graphs):
        def single(graph_tuple):
            spec = SweepSpec(devices=(device_by_name("Q845"),),
                             graphs=graph_tuple, num_inferences=3, seed=7)
            return SweepRunner(spec, max_workers=2).run()

        full = single(graphs)
        only_first = single(graphs[:1])
        assert only_first[0] == full[0]

    def test_different_base_seed_changes_noise(self, graphs):
        def run_with(seed):
            spec = SweepSpec(devices=(device_by_name("Q845"),),
                             graphs=graphs[:1], num_inferences=5, seed=seed)
            return SweepRunner(spec).run()[0]

        a, b = run_with(0), run_with(1)
        assert a.model_name == b.model_name
        assert a.latency_ms != b.latency_ms  # different noise draws
        assert a.flops == b.flops  # deterministic accounting unchanged

    def test_streaming_callback_in_job_order(self, spec):
        streamed = []
        results = SweepRunner(spec, max_workers=4).run(on_result=streamed.append)
        assert streamed == results


class TestStreamingPaths:
    def test_iter_results_matches_run(self, spec):
        iterated = list(SweepRunner(spec, max_workers=4).iter_results())
        assert iterated == SweepRunner(spec, max_workers=1).run()

    def test_iter_results_chunked(self, spec):
        iterated = list(SweepRunner(spec, max_workers=3,
                                    chunk_size=5).iter_results())
        assert iterated == SweepRunner(spec, max_workers=1).run()

    def test_collect_false_streams_without_buffering(self, spec):
        streamed = []
        returned = SweepRunner(spec, max_workers=4).run(
            on_result=streamed.append, collect=False)
        assert returned == []
        assert streamed == SweepRunner(spec, max_workers=1).run()

    def test_empty_sweep_iterates_nothing(self, graphs):
        from repro.devices.device import device_by_name

        spec = SweepSpec(devices=(device_by_name("A20"),), graphs=graphs,
                         backends=(Backend.SNPE_DSP,))
        assert list(SweepRunner(spec).iter_results()) == []
        assert SweepRunner(spec).run(collect=False) == []


class TestPipelineWiring:
    def test_benchmark_unique_models(self):
        from repro.android.appgen import AppGenerator, GeneratorConfig
        from repro.android.playstore import PlayStore
        from repro.core.pipeline import GaugeNN

        store = PlayStore(
            [AppGenerator(GeneratorConfig.snapshot_2021(scale=0.02)).generate()])
        gauge = GaugeNN(store)
        analysis = gauge.analyze_snapshot("2021")
        results = GaugeNN.benchmark_unique_models(
            analysis, DEV_BOARDS, num_inferences=2, max_workers=3)
        assert results
        device_names = {record.device_name for record in results}
        assert device_names <= {device.name for device in DEV_BOARDS}
        # Deterministic regardless of parallelism.
        again = GaugeNN.benchmark_unique_models(
            analysis, DEV_BOARDS, num_inferences=2, max_workers=1)
        assert results == again
