"""Unit tests for the DNN graph container."""

import pytest

from repro.dnn.builder import GraphBuilder
from repro.dnn.graph import Graph, GraphMetadata, Modality
from repro.dnn.layers import Layer, LayerCategory, OpType
from repro.dnn.tensor import DType, TensorSpec, WeightTensor


def _tiny_graph(seed: int = 0, name: str = "tiny") -> Graph:
    builder = GraphBuilder(name, (1, 16, 16, 3), weight_seed=seed)
    builder.conv2d(8, kernel=3, activation=OpType.RELU)
    builder.global_avg_pool()
    builder.dense(4)
    builder.softmax()
    return builder.build()


class TestGraphConstruction:
    def test_requires_input_specs(self):
        with pytest.raises(ValueError):
            Graph(GraphMetadata(name="empty"), ())

    def test_duplicate_layer_rejected(self):
        graph = Graph(GraphMetadata(name="g"), (TensorSpec((1, 4)),))
        graph.add_layer(Layer(name="a", op=OpType.RELU, inputs=("input_0",),
                              output_spec=TensorSpec((1, 4))))
        with pytest.raises(ValueError):
            graph.add_layer(Layer(name="a", op=OpType.RELU, inputs=("input_0",),
                                  output_spec=TensorSpec((1, 4))))

    def test_unknown_input_rejected(self):
        graph = Graph(GraphMetadata(name="g"), (TensorSpec((1, 4)),))
        with pytest.raises(ValueError):
            graph.add_layer(Layer(name="a", op=OpType.RELU, inputs=("missing",),
                                  output_spec=TensorSpec((1, 4))))

    def test_layer_lookup(self):
        graph = _tiny_graph()
        first = graph.layers[0]
        assert graph.layer(first.name) is first
        with pytest.raises(KeyError):
            graph.layer("not-there")
        assert first.name in graph
        assert "nope" not in graph

    def test_iteration_and_len(self):
        graph = _tiny_graph()
        assert len(graph) == graph.num_layers == len(list(graph))


class TestGraphStructure:
    def test_is_acyclic(self):
        assert _tiny_graph().is_acyclic()

    def test_networkx_export(self):
        graph = _tiny_graph()
        dag = graph.to_networkx()
        assert dag.number_of_nodes() == graph.num_layers + 1
        assert dag.number_of_edges() >= graph.num_layers

    def test_output_layers(self):
        graph = _tiny_graph()
        outputs = graph.output_layers()
        assert len(outputs) == 1
        assert outputs[0].op == OpType.SOFTMAX

    def test_output_specs(self):
        graph = _tiny_graph()
        (spec,) = graph.output_specs()
        assert spec.shape == (1, 4)


class TestGraphAccounting:
    def test_totals_are_positive(self):
        graph = _tiny_graph()
        assert graph.total_flops() > 0
        assert graph.total_parameters() > 0
        assert graph.model_size_bytes() == sum(l.weight_bytes for l in graph.layers)
        assert graph.total_flops() >= 2 * graph.total_macs()

    def test_layer_category_fractions_sum_to_one(self):
        fractions = _tiny_graph().layer_category_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert LayerCategory.CONV in fractions

    def test_op_counts(self):
        counts = _tiny_graph().op_counts()
        assert counts[OpType.CONV2D] == 1
        assert counts[OpType.DENSE] == 1

    def test_peak_activation_bytes(self):
        graph = _tiny_graph()
        largest = max(layer.activation_bytes() for layer in graph.layers)
        assert graph.peak_activation_bytes() == largest


class TestGraphIdentity:
    def test_checksum_deterministic(self):
        assert _tiny_graph(seed=1).weights_checksum() == _tiny_graph(seed=1).weights_checksum()

    def test_checksum_differs_across_seeds(self):
        assert _tiny_graph(seed=1).weights_checksum() != _tiny_graph(seed=2).weights_checksum()

    def test_structural_checksum_ignores_seed(self):
        assert _tiny_graph(seed=1).structural_checksum() == _tiny_graph(seed=2).structural_checksum()

    def test_shared_weight_fraction_self_is_one(self):
        graph = _tiny_graph(seed=1)
        assert graph.shared_weight_fraction(graph) == pytest.approx(1.0)

    def test_shared_weight_fraction_unrelated_is_zero(self):
        assert _tiny_graph(seed=1).shared_weight_fraction(_tiny_graph(seed=2)) == 0.0

    def test_differing_layer_count(self):
        assert _tiny_graph(seed=1).differing_layer_count(_tiny_graph(seed=1)) == 0
        assert _tiny_graph(seed=1).differing_layer_count(_tiny_graph(seed=2)) > 0

    def test_layer_checksums_only_weighted_layers(self):
        graph = _tiny_graph()
        checksums = graph.layer_checksums()
        assert all(graph.layer(name).weights for name in checksums)


class TestModality:
    def test_image_inference(self):
        spec = TensorSpec((1, 224, 224, 3))
        assert Modality.from_input_spec(spec) is Modality.IMAGE

    def test_text_inference(self):
        spec = TensorSpec((1, 16), DType.INT32)
        assert Modality.from_input_spec(spec) is Modality.TEXT

    def test_audio_inference(self):
        spec = TensorSpec((1, 300, 80))
        assert Modality.from_input_spec(spec) is Modality.AUDIO

    def test_metadata_overrides_inference(self):
        graph = _tiny_graph().with_metadata(modality=Modality.SENSOR)
        assert graph.modality is Modality.SENSOR

    def test_with_metadata_preserves_layers(self):
        graph = _tiny_graph()
        renamed = graph.with_metadata(name="other", framework="caffe")
        assert renamed.name == "other"
        assert renamed.framework == "caffe"
        assert renamed.num_layers == graph.num_layers
