"""Query engine v2: bit-identity properties of the PR 10 rebuild.

Three contracts, each asserted as exact equality (``==`` on floats — the
engine promises bit-identity, not closeness):

* **parallel == sequential** — ``arrays()``/``count()``/``aggregate()``
  and the merged :class:`QueryStats` are identical for any worker count
  and either pool kind, on randomized mixed JSONL/columnar stores;
* **kernel == reference** — every grouped reduction through the
  vectorised kernels equals the per-group reference loop, including
  string min/max, integer sums, empty groups, all-pruned queries and
  single-row segments;
* **coded == decoded** — dictionary-coded predicate evaluation and late
  materialisation return exactly what masking decoded arrays returns
  (a JSONL twin of the same rows is the oracle).

Plus the satellite fixes: the ``in`` textual grammar, numeric ``!=``
pushdown, vectorised ``rows()``, and the cached-query hook.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import synthetic_fleet_batch
from repro.store import ResultStore
from repro.store import kernels
from repro.store.query import Predicate, QueryStats, parse_predicate
from repro.store.schema import kind_for

ALL_FNS = ("count", "sum", "mean", "std", "median", "min", "max",
           "p50", "p90", "p99", "p999")


def mixed_store(root, seed: int = 0) -> ResultStore:
    """A store mixing columnar batches, JSONL rows and a single-row segment."""
    store = ResultStore(root)
    kind = kind_for("fleet_events")
    with store.writer(rows_per_segment=64) as writer:
        writer.append_batch("fleet_events",
                            synthetic_fleet_batch(0, 150, seed=seed))
        writer.flush()
        # JSONL (row-path) segments of the *same distribution*.
        batch = synthetic_fleet_batch(1, 90, seed=seed)
        for row in _rows_of(kind, batch):
            writer.append_row("fleet_events", row)
        writer.flush()
        # A single-row columnar segment.
        writer.append_batch("fleet_events",
                            synthetic_fleet_batch(2, 1, seed=seed))
    store.refresh()
    return store


def _rows_of(kind, batch) -> list[dict]:
    names = [c.name for c in kind.columns]
    length = len(batch[names[0]])
    return [{name: batch[name][i].item() if hasattr(batch[name][i], "item")
             else batch[name][i] for name in names} for i in range(length)]


def full_query(store, **parallel):
    query = store.query("fleet_events")
    if parallel:
        query.parallel(parallel.get("max_workers"),
                       use_processes=parallel.get("use_processes", False))
    return (query
            .where("latency_ms", "<", 120.0)
            .where("region", "in", ("eu-west", "us-east", "eu", "us"))
            .bin("time_s", 21600)
            .group_by("device_name", "target", "time_s_bin")
            .agg(**{f"lat_{fn}": ("latency_ms", fn) for fn in ALL_FNS},
                 **{f"bytes_{fn}": ("cloud_bytes", fn)
                    for fn in ("sum", "mean", "max")},
                 model_min=("model_name", "min"),
                 model_max=("model_name", "max")))


# --------------------------------------------------------------------------- #
# Kernel vs per-group reference
# --------------------------------------------------------------------------- #
class TestKernelVsReference:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_every_reduction_bit_identical(self, tmp_path, seed):
        store = mixed_store(tmp_path / "s", seed)
        reference = full_query(store).aggregate(engine="reference")
        kernel = full_query(store).aggregate(engine="kernel")
        assert len(reference) > 1
        assert kernel == reference  # exact, floats included

    def test_single_group_and_single_row_groups(self, tmp_path):
        store = mixed_store(tmp_path / "s")
        # user_id groups are tiny (many singletons): the quantile/median
        # kernels must handle count==1 segments.
        build = lambda: (store.query("fleet_events")
                         .group_by("user_id")
                         .agg(**{fn: ("latency_ms", fn) for fn in ALL_FNS}))
        assert build().aggregate() == build().aggregate(engine="reference")
        # One group in total.
        one = lambda: (store.query("fleet_events").group_by("scenario")
                       .agg(m=("latency_ms", "median"),
                            s=("latency_ms", "sum")))
        assert one().aggregate() == one().aggregate(engine="reference")

    def test_all_pruned_and_empty(self, tmp_path):
        store = mixed_store(tmp_path / "s")
        impossible = lambda: (store.query("fleet_events")
                              .where("latency_ms", ">", 1e12)
                              .group_by("device_name")
                              .agg(n=("latency_ms", "count")))
        assert impossible().aggregate() == []
        assert impossible().aggregate(engine="reference") == []
        empty = ResultStore(tmp_path / "empty")
        assert (empty.query("fleet_events").group_by("device_name")
                .agg(n=("latency_ms", "count")).aggregate()) == []

    def test_unknown_engine_rejected(self, tmp_path):
        store = mixed_store(tmp_path / "s")
        with pytest.raises(ValueError, match="unknown aggregate engine"):
            (store.query("fleet_events")
             .agg(n=("latency_ms", "count")).aggregate(engine="fast"))

    def test_factorize_parts_matches_unique_over_decoded(self):
        rng = np.random.default_rng(5)
        vocabs = [np.unique(rng.choice(list("abcdefgh"), 6)) for _ in range(3)]
        parts, decoded = [], []
        for vocab in vocabs:
            codes = rng.integers(0, len(vocab), 20).astype(np.uint8)
            parts.append(_coded(vocab, codes))
            decoded.append(vocab[codes])
        # Mix in one plain (already decoded) part, as a JSONL segment would be.
        plain = rng.choice(list("defgXY"), 15)
        parts.append(plain)
        decoded.append(plain)
        values, inverse = kernels.factorize_parts(parts)
        expected_values, expected_inverse = np.unique(
            np.concatenate(decoded), return_inverse=True)
        assert np.array_equal(values, expected_values)
        assert np.array_equal(inverse, expected_inverse)


def _coded(vocab, codes):
    from repro.store.columnar import CodedColumn
    return CodedColumn(codes, np.asarray(vocab))


# --------------------------------------------------------------------------- #
# Parallel vs sequential
# --------------------------------------------------------------------------- #
class TestParallelBitIdentity:
    @pytest.mark.parametrize("workers", [2, 8, None])
    def test_thread_scans_identical(self, tmp_path, workers):
        store = mixed_store(tmp_path / "s")
        sequential = full_query(store)
        expected = sequential.arrays()
        parallel = full_query(store, max_workers=workers)
        actual = parallel.arrays()
        assert set(actual) == set(expected)
        for name in expected:
            assert expected[name].dtype == actual[name].dtype
            assert np.array_equal(expected[name], actual[name])
        assert parallel.stats == sequential.stats  # exact-addition merge
        assert (full_query(store, max_workers=workers).aggregate()
                == full_query(store).aggregate())
        assert (full_query(store, max_workers=workers).count()
                == full_query(store).count())

    def test_process_scans_identical(self, tmp_path):
        store = mixed_store(tmp_path / "s")
        sequential = full_query(store)
        expected = sequential.arrays()
        parallel = full_query(store, max_workers=2, use_processes=True)
        actual = parallel.arrays()
        for name in expected:
            assert np.array_equal(expected[name], actual[name])
        assert parallel.stats == sequential.stats
        assert (full_query(store, max_workers=2, use_processes=True)
                .aggregate() == full_query(store).aggregate())

    def test_parallel_rejects_non_positive_workers(self, tmp_path):
        store = mixed_store(tmp_path / "s")
        with pytest.raises(ValueError):
            store.query("fleet_events").parallel(0)

    def test_iter_mapped_preserves_order(self):
        from repro.runtime.pool import iter_mapped

        items = list(range(57))
        assert list(iter_mapped(lambda i: i * i, items, max_workers=4)) \
            == [i * i for i in items]


# --------------------------------------------------------------------------- #
# Coded vs decoded predicate evaluation
# --------------------------------------------------------------------------- #
class TestCodedPredicates:
    def _twins(self, tmp_path):
        """The same rows as a columnar store and as a JSONL store."""
        kind = kind_for("fleet_events")
        columnar = ResultStore(tmp_path / "columnar")
        with columnar.writer(rows_per_segment=64) as writer:
            for index in range(3):
                writer.append_batch("fleet_events",
                                    synthetic_fleet_batch(index, 80))
        jsonl = ResultStore(tmp_path / "jsonl")
        with jsonl.writer(rows_per_segment=64) as writer:
            for index in range(3):
                for row in _rows_of(kind,
                                    synthetic_fleet_batch(index, 80)):
                    writer.append_row("fleet_events", row)
        columnar.refresh()
        jsonl.refresh()
        assert all(m.is_columnar
                   for m in columnar.segments_for("fleet_events"))
        assert not any(m.is_columnar
                       for m in jsonl.segments_for("fleet_events"))
        return columnar, jsonl

    @pytest.mark.parametrize("op,value", [
        ("==", "device"), ("!=", "device"), ("<", "device"), (">=", "cloud"),
        ("in", ("cloud",)), ("in", ("device", "nope")),
    ])
    def test_masks_match_decoded_twin(self, tmp_path, op, value):
        columnar, jsonl = self._twins(tmp_path)
        coded = (columnar.query("fleet_events")
                 .where("target", op, value).arrays())
        decoded = (jsonl.query("fleet_events")
                   .where("target", op, value).arrays())
        for name in coded:
            assert np.array_equal(coded[name], decoded[name]), name

    def test_vocabulary_mask_identity(self, tmp_path):
        """mask(vocabulary)[codes] == mask(decoded) on real segment payloads."""
        columnar, _ = self._twins(tmp_path)
        meta = columnar.segments_for("fleet_events")[0]
        loaded = columnar.columns_for(meta)
        view = loaded.coded("device_name")
        assert view is not None
        decoded = loaded["device_name"]
        assert np.array_equal(view.decode(), decoded)
        for predicate in (Predicate("device_name", "==", "Pixel 4"),
                          Predicate("device_name", "!=", "Pixel 4"),
                          Predicate("device_name", "in", ("Pixel 4", "S21")),
                          Predicate("device_name", "<", "Q")):
            assert np.array_equal(predicate.mask(view.values)[view.codes],
                                  predicate.mask(decoded))

    def test_grouped_aggregate_matches_decoded_twin(self, tmp_path):
        columnar, jsonl = self._twins(tmp_path)
        build = lambda store: (store.query("fleet_events")
                               .where("target", "==", "device")
                               .group_by("device_name", "backend")
                               .agg(n=("latency_ms", "count"),
                                    s=("latency_ms", "sum"),
                                    p99=("latency_ms", "p99")))
        assert build(columnar).aggregate() == build(jsonl).aggregate()


# --------------------------------------------------------------------------- #
# Satellites: grammar, pushdown, rows()
# --------------------------------------------------------------------------- #
class TestInGrammar:
    def test_parse_in(self):
        assert parse_predicate("backend in tflite|ncnn") \
            == ("backend", "in", ("tflite", "ncnn"))
        assert parse_predicate("user_id in 3|5") == ("user_id", "in", (3, 5))
        assert parse_predicate("region in eu") == ("region", "in", ("eu",))

    def test_parse_in_rejects_empty_values(self):
        with pytest.raises(ValueError):
            parse_predicate("backend in ")
        with pytest.raises(ValueError):
            parse_predicate("backend in |")

    def test_comparisons_still_parse(self):
        assert parse_predicate("latency_ms<5") == ("latency_ms", "<", 5)
        assert parse_predicate("device_name=S21") \
            == ("device_name", "==", "S21")
        # A '<=' inside the left side never parses as 'in'.
        assert parse_predicate("wait_ms<=1.5") == ("wait_ms", "<=", 1.5)

    def test_in_reaches_isin_and_pushdown(self, tmp_path):
        store = mixed_store(tmp_path / "s")
        column, op, value = parse_predicate("target in device")
        query = store.query("fleet_events").where(column, op, value)
        expected = (store.query("fleet_events")
                    .where("target", "==", "device").count())
        assert query.count() == expected
        # Absent values prune through the distinct-set stats.
        pruned = (store.query("fleet_events")
                  .where("target", "in", ("no-such-target",)))
        assert pruned.count() == 0
        assert pruned.stats.segments_skipped == pruned.stats.segments_total


class TestNotEqualPushdown:
    def test_constant_segment_pruned(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        base = synthetic_fleet_batch(0, 50)
        constant = dict(base, cloud_bytes=np.full(50, 7))
        varied = dict(synthetic_fleet_batch(1, 50),
                      cloud_bytes=np.arange(50))
        with store.writer(rows_per_segment=64) as writer:
            writer.append_batch("fleet_events", constant)
            writer.flush()
            writer.append_batch("fleet_events", varied)
        store.refresh()
        query = store.query("fleet_events").where("cloud_bytes", "!=", 7)
        arrays = query.arrays("cloud_bytes")
        assert query.stats.segments_skipped == 1  # the constant segment
        assert query.stats.segments_scanned == 1
        assert np.array_equal(arrays["cloud_bytes"],
                              np.arange(50)[np.arange(50) != 7])

    def test_range_segments_still_scanned(self):
        column = kind_for("fleet_events").column("cloud_bytes")

        class Meta:
            stats = {"cloud_bytes": {"min": 3, "max": 9}}
            rows = 4

        assert Predicate("cloud_bytes", "!=", 7).may_match(Meta, column)
        Meta.stats = {"cloud_bytes": {"min": 7, "max": 7}}
        assert not Predicate("cloud_bytes", "!=", 7).may_match(Meta, column)
        assert Predicate("cloud_bytes", "!=", 8).may_match(Meta, column)


class TestRowsVectorised:
    def test_rows_native_types_and_order(self, tmp_path):
        store = mixed_store(tmp_path / "s")
        query = store.query("fleet_events").where("target", "==", "cloud")
        rows = query.rows()
        arrays = (store.query("fleet_events")
                  .where("target", "==", "cloud").arrays())
        names = [c.name for c in kind_for("fleet_events").columns]
        assert rows and list(rows[0]) == names
        for row in rows:
            for value in row.values():
                assert isinstance(value, (int, float, str, bool))
        for i in (0, len(rows) // 2, len(rows) - 1):
            assert rows[i] == {name: arrays[name][i].item()
                               for name in names}

    def test_rows_empty(self, tmp_path):
        store = mixed_store(tmp_path / "s")
        assert (store.query("fleet_events")
                .where("latency_ms", ">", 1e12).rows()) == []


# --------------------------------------------------------------------------- #
# Cached queries ride the same hook
# --------------------------------------------------------------------------- #
class TestCachedQueryHook:
    def test_hits_bit_identical_including_coded_groups(self, tmp_path):
        from repro.serve import ServeCache
        from repro.serve.cache import CachedQuery

        store = mixed_store(tmp_path / "s")
        kind = kind_for("fleet_events")
        cache = ServeCache()

        def build():
            query = CachedQuery(store, kind, cache=cache, fragment="f")
            return (query.where("target", "==", "device")
                    .group_by("device_name")
                    .agg(n=("latency_ms", "count"),
                         s=("latency_ms", "sum")))

        cold = build()
        cold_result = cold.aggregate()
        assert cold.stats.segments_scanned + cold.stats.segments_skipped \
            == cold.stats.segments_total
        warm = build()
        assert warm.aggregate() == cold_result
        assert warm.stats.segments_cached == warm.stats.segments_total
        plain = (store.query("fleet_events").where("target", "==", "device")
                 .group_by("device_name")
                 .agg(n=("latency_ms", "count"), s=("latency_ms", "sum")))
        assert plain.aggregate() == cold_result

    def test_cached_count_and_stats(self, tmp_path):
        from repro.serve import ServeCache
        from repro.serve.cache import CachedQuery

        store = mixed_store(tmp_path / "s")
        kind = kind_for("fleet_events")
        cache = ServeCache()
        first = CachedQuery(store, kind, cache=cache, fragment="c")
        first.where("target", "==", "cloud")
        expected = first.count()
        second = CachedQuery(store, kind, cache=cache, fragment="c")
        second.where("target", "==", "cloud")
        assert second.count() == expected
        assert second.stats.segments_cached == second.stats.segments_total
        assert second.stats.rows_scanned == 0


class TestQueryStatsMerge:
    def test_merge_is_exact_addition(self):
        total = QueryStats()
        total.merge(QueryStats(segments_total=1, segments_scanned=1,
                               rows_scanned=10, rows_matched=3))
        total.merge(QueryStats(segments_total=1, segments_skipped=1))
        total.merge(QueryStats(segments_total=1, segments_cached=1))
        assert total == QueryStats(segments_total=3, segments_skipped=1,
                                   segments_scanned=1, segments_cached=1,
                                   rows_scanned=10, rows_matched=3)
