"""Unit tests for the model zoo architectures and catalogue."""

import pytest

from repro.dnn.graph import Modality
from repro.dnn.layers import LayerCategory, OpType
from repro.dnn.zoo import (
    autocomplete_lstm,
    blazeface,
    crash_detection,
    deeplab_lite,
    fssd,
    keyword_spotting,
    mobilenet_v1,
    mobilenet_v2,
    movement_tracking,
    ocr_crnn,
    pose_estimation,
    sound_recognition,
    speech_recognition,
    ssd_mobilenet,
    style_transfer,
    unet_lite,
)
from repro.dnn.zoo.catalog import CATALOG, TASK_WEIGHTS, architectures_for_task, build


class TestMobileNet:
    def test_v1_parameter_count_matches_reference(self):
        graph = mobilenet_v1(alpha=1.0, resolution=224, num_classes=1000)
        assert graph.total_parameters() == pytest.approx(4.2e6, rel=0.05)

    def test_v1_macs_match_reference(self):
        graph = mobilenet_v1(alpha=1.0, resolution=224)
        assert graph.total_macs() == pytest.approx(569e6, rel=0.1)

    def test_width_multiplier_shrinks_model(self):
        full = mobilenet_v1(alpha=1.0)
        slim = mobilenet_v1(alpha=0.5)
        assert slim.total_parameters() < full.total_parameters()
        assert slim.total_flops() < full.total_flops()

    def test_resolution_changes_flops_not_parameters(self):
        big = mobilenet_v1(resolution=224)
        small = mobilenet_v1(resolution=128)
        assert small.total_flops() < big.total_flops()
        assert small.total_parameters() == big.total_parameters()

    def test_v2_uses_inverted_residuals(self):
        graph = mobilenet_v2()
        assert any(layer.op == OpType.ADD for layer in graph.layers)
        assert graph.total_parameters() == pytest.approx(3.5e6, rel=0.25)

    def test_depthwise_layers_present(self):
        counts = mobilenet_v1().layer_category_counts()
        assert counts[LayerCategory.DEPTH_CONV] == 13


class TestDetectors:
    def test_fssd_has_detection_postprocess(self):
        graph = fssd()
        assert any(layer.op == OpType.DETECTION_POSTPROCESS for layer in graph.layers)
        assert graph.modality is Modality.IMAGE

    def test_ssd_mobilenet_builds(self):
        graph = ssd_mobilenet(resolution=192, alpha=0.75)
        assert graph.total_flops() > 0

    def test_blazeface_is_small_and_fast(self):
        graph = blazeface()
        assert graph.total_parameters() < 1e6
        assert graph.total_flops() < 3e8

    def test_detectors_are_acyclic(self):
        assert fssd().is_acyclic()
        assert blazeface().is_acyclic()


class TestSegmentationAndVision:
    def test_unet_output_is_dense(self):
        graph = unet_lite(resolution=128, base_filters=16, depth=3)
        (spec,) = graph.output_specs()
        assert spec.shape[1] == 128 and spec.shape[2] == 128

    def test_deeplab_builds(self):
        graph = deeplab_lite(resolution=129, alpha=0.5)
        assert graph.total_flops() > 0

    def test_segmentation_is_heavier_than_detection(self):
        assert unet_lite().total_flops() > blazeface().total_flops()

    def test_ocr_uses_recurrent_layers(self):
        graph = ocr_crnn()
        ops = {layer.op for layer in graph.layers}
        assert OpType.LSTM in ops

    def test_pose_and_style(self):
        assert pose_estimation().total_parameters() > 0
        assert style_transfer().total_flops() > 1e9


class TestTextAudioSensor:
    def test_autocomplete_modality_and_output(self):
        graph = autocomplete_lstm(vocab_size=5000)
        assert graph.modality is Modality.TEXT
        (spec,) = graph.output_specs()
        assert spec.shape[-1] == 5000

    def test_sound_recognition_modality(self):
        assert sound_recognition().modality is Modality.AUDIO

    def test_speech_recognition_has_lstm_stack(self):
        graph = speech_recognition()
        lstm_layers = [l for l in graph.layers if l.op == OpType.LSTM]
        assert len(lstm_layers) == 3

    def test_keyword_spotting_is_tiny(self):
        assert keyword_spotting().total_parameters() < 1e5

    def test_sensor_models(self):
        assert movement_tracking().modality is Modality.SENSOR
        assert crash_detection().modality is Modality.SENSOR


class TestCatalog:
    def test_catalog_covers_all_table3_tasks(self):
        catalogue_tasks = {entry.task for entry in CATALOG}
        assert set(TASK_WEIGHTS) == catalogue_tasks

    def test_architectures_for_task(self):
        entries = architectures_for_task("object detection")
        assert len(entries) >= 2
        with pytest.raises(KeyError):
            architectures_for_task("no-such-task")

    def test_every_entry_builds(self):
        for entry in CATALOG:
            graph = build(entry, weight_seed=3)
            assert graph.total_parameters() > 0
            assert graph.metadata.task == entry.task

    def test_variants_differ(self):
        entry = architectures_for_task("object detection")[0]
        variants = sorted(entry.size_variants)
        if len(variants) >= 2:
            a = build(entry, variant=variants[0])
            b = build(entry, variant=variants[1])
            assert a.total_flops() != b.total_flops()

    def test_unknown_variant_rejected(self):
        entry = CATALOG[0]
        with pytest.raises(KeyError):
            build(entry, variant="definitely-not-a-variant")

    def test_build_respects_framework_and_seed(self):
        entry = architectures_for_task("face detection")[0]
        a = build(entry, framework="caffe", weight_seed=1)
        b = build(entry, framework="caffe", weight_seed=1)
        c = build(entry, framework="caffe", weight_seed=2)
        assert a.framework == "caffe"
        assert a.weights_checksum() == b.weights_checksum()
        assert a.weights_checksum() != c.weights_checksum()
