"""Unit tests for the gaugeNN offline analyses: app code, tasks, models, uniqueness,
optimisations and temporal comparison."""

import pytest

from repro.android.dex import DexFile
from repro.core.app_analysis import AppAnalyzer
from repro.core.model_analysis import ModelAnalyzer, trace_flops, trace_parameters
from repro.core.optimizations import analyze_optimizations
from repro.core.task_classifier import TaskClassifier, UNIDENTIFIED
from repro.core.temporal import compare_snapshots
from repro.core.uniqueness import analyze_finetuning, analyze_uniqueness
from repro.dnn.finetune import finetune_last_layers
from repro.dnn.quantization import QuantizationScheme, quantize
from repro.dnn.zoo import (
    autocomplete_lstm,
    blazeface,
    crash_detection,
    fssd,
    hair_segmentation,
    keyword_spotting,
    mobilenet_v1,
    movement_tracking,
    ocr_crnn,
    sound_recognition,
    speech_recognition,
)


class TestAppAnalyzer:
    def _dex_with(self, invocations):
        dex = DexFile()
        dex.add_invocations("com.test.App", invocations)
        return dex.to_bytes()

    def test_detects_tflite_and_nnapi(self):
        dex = self._dex_with([
            "Lorg/tensorflow/lite/Interpreter;->run(Ljava/lang/Object;Ljava/lang/Object;)V",
            "Lorg/tensorflow/lite/nnapi/NnApiDelegate;-><init>()V",
        ])
        analysis = AppAnalyzer().analyze(dex, [])
        assert "tflite" in analysis.frameworks_in_code
        assert "nnapi" in analysis.accelerators
        assert not analysis.uses_cloud_ml

    def test_detects_cloud_apis_and_providers(self):
        from repro.android.cloud_apis import api_by_name

        dex = self._dex_with([
            api_by_name("Vision/Face").example_invocation,
            api_by_name("Rekognition (face recognition)").example_invocation,
        ])
        analysis = AppAnalyzer().analyze(dex, [])
        assert "Vision/Face" in analysis.cloud_apis
        assert set(analysis.cloud_providers) == {"Google", "AWS"}
        assert analysis.uses_cloud_ml

    def test_detects_frameworks_from_native_libraries_only(self):
        analysis = AppAnalyzer().analyze(None, ["libncnn.so", "libSNPE.so"])
        assert "ncnn" in analysis.frameworks
        assert "snpe" in analysis.frameworks
        assert "snpe" in analysis.accelerators

    def test_clean_app(self):
        dex = self._dex_with(["Landroid/app/Activity;->onCreate(Landroid/os/Bundle;)V"])
        analysis = AppAnalyzer().analyze(dex, [])
        assert not analysis.frameworks
        assert not analysis.uses_cloud_ml


class TestTaskClassifier:
    @pytest.mark.parametrize("builder,expected", [
        (lambda: blazeface(name="blazeface_front"), "face detection"),
        (lambda: fssd(name="object_detector_fssd"), "object detection"),
        (lambda: hair_segmentation(name="hair_segmentation_v2"), "semantic segmentation"),
        (lambda: ocr_crnn(name="card_number_recognizer"), "text recognition"),
        (lambda: autocomplete_lstm(name="next_word_model"), "auto-complete"),
        (lambda: sound_recognition(name="yamnet_lite"), "sound recognition"),
        (lambda: keyword_spotting(name="hotword_small"), "keyword detection"),
        (lambda: crash_detection(name="crash_net"), "crash detection"),
        (lambda: movement_tracking(name="activity_window_gru"), "movement tracking"),
    ])
    def test_name_based_classification(self, builder, expected):
        classification = TaskClassifier().classify(builder())
        assert classification.task == expected
        assert classification.identified

    def test_structure_based_classification_without_name_hint(self):
        detector = fssd(name="model_417")
        classification = TaskClassifier().classify(detector)
        assert classification.source == "structure"
        assert classification.task == "object detection"

    def test_generic_text_model_classified_by_structure(self):
        model = autocomplete_lstm(name="net_3")
        assert TaskClassifier().classify(model).task == "auto-complete"

    def test_speech_model_by_structure(self):
        model = speech_recognition(name="module_9")
        assert TaskClassifier().classify(model).task == "speech recognition"

    def test_classifier_matches_generator_labels(self, analysis_2021):
        """The rule-based classifier should agree with the ground-truth task
        labels of the synthetic models for a large majority of instances."""
        records = analysis_2021.models
        assert records
        matches = sum(
            1 for record in records if record.task == record.graph.metadata.task)
        assert matches / len(records) > 0.6

    def test_unidentified_for_unknown_structure(self):
        from repro.dnn.builder import GraphBuilder

        builder = GraphBuilder("mystery_blob", (1, 300, 80))
        builder.dense(64)
        graph = builder.build()
        classification = TaskClassifier().classify(graph)
        assert classification.task in {UNIDENTIFIED, "sound recognition", "speech recognition"}


class TestModelAnalyzer:
    def test_trace_functions(self):
        graph = mobilenet_v1(weight_seed=1)
        assert trace_flops(graph) == graph.total_flops()
        assert trace_parameters(graph) == graph.total_parameters()

    def test_records_carry_quantization_traces(self, analysis_2021):
        quantized_records = [r for r in analysis_2021.models if r.has_dequantize_layer]
        for record in quantized_records:
            assert record.uses_int8_weights

    def test_every_record_is_consistent(self, analysis_2021):
        for record in analysis_2021.models:
            assert record.flops >= 0
            assert record.parameters > 0
            assert record.num_layers == record.graph.num_layers
            assert 0.0 <= record.near_zero_weight_fraction <= 1.0
            assert abs(sum(record.layer_category_fractions.values()) - 1.0) < 1e-6


class TestUniqueness:
    def test_duplicates_detected(self, analysis_2021):
        report = analyze_uniqueness(analysis_2021.models)
        assert report.total_models == analysis_2021.total_models
        assert report.unique_models == analysis_2021.unique_models
        assert report.unique_models < report.total_models
        assert 0.0 < report.unique_fraction < 1.0
        assert report.shared_fraction > 0.3
        assert report.most_duplicated[0][1] >= report.most_duplicated[-1][1]

    def test_finetuning_detects_derived_models(self):
        base = mobilenet_v1(name="base_classifier", weight_seed=4)
        derived = finetune_last_layers(base, num_layers=2, name="finetuned_classifier")
        other = blazeface(name="unrelated", weight_seed=5)
        analyzer = ModelAnalyzer()

        def record_for(graph):
            from repro.formats.serialize import serialize_model
            from repro.core.validator import ModelValidator
            from repro.core.extractor import CandidateFile, CandidateGroup

            artifact = serialize_model(graph, "tflite")
            files = tuple(
                CandidateFile(path=f"apk/assets/{name}", data=data, source="apk")
                for name, data in artifact.files.items()
            )
            validated = ModelValidator().validate_group(CandidateGroup(files=files))
            return analyzer.analyze(validated, app_package="com.x", category="TOOLS")

        records = [record_for(base), record_for(derived), record_for(other)]
        report = analyze_finetuning(records, share_threshold=0.2, few_layer_threshold=3)
        assert report.unique_models == 3
        assert report.models_sharing_weights == 2
        assert report.models_differing_few_layers == 2

    def test_empty_inputs(self):
        empty_unique = analyze_uniqueness([])
        assert empty_unique.unique_fraction == 0.0
        empty_finetune = analyze_finetuning([])
        assert empty_finetune.sharing_fraction == 0.0


class TestOptimizations:
    def test_snapshot_adoption(self, analysis_2021):
        adoption = analyze_optimizations(analysis_2021.models)
        assert adoption.total_models == analysis_2021.total_models
        # The paper finds no clustering or pruning traces in the wild.
        assert adoption.clustered_models == 0
        assert adoption.pruned_models == 0
        assert 0.0 <= adoption.dequantize_fraction <= 0.5
        assert adoption.int8_weight_fraction >= adoption.dequantize_fraction
        assert 0.0 < adoption.mean_near_zero_weight_fraction < 0.15

    def test_quantized_model_counted(self):
        graph = quantize(blazeface(weight_seed=8), QuantizationScheme.FULL_INT8)
        analyzer = ModelAnalyzer()
        from repro.core.extractor import CandidateFile, CandidateGroup
        from repro.core.validator import ModelValidator
        from repro.formats.serialize import serialize_model

        artifact = serialize_model(graph, "tflite")
        files = tuple(CandidateFile(path=f"apk/assets/{n}", data=d, source="apk")
                      for n, d in artifact.files.items())
        record = analyzer.analyze(ModelValidator().validate_group(CandidateGroup(files)),
                                  app_package="com.q", category="TOOLS")
        adoption = analyze_optimizations([record])
        assert adoption.dequantize_fraction == 1.0
        assert adoption.int8_weight_fraction == 1.0
        assert adoption.int8_activation_fraction == 1.0


class TestTemporal:
    def test_model_growth_roughly_doubles(self, analysis_2020, analysis_2021):
        comparison = compare_snapshots(analysis_2020, analysis_2021)
        assert comparison.model_growth > 1.3
        assert comparison.later_total_models > comparison.earlier_total_models

    def test_cloud_growth(self, analysis_2020, analysis_2021):
        comparison = compare_snapshots(analysis_2020, analysis_2021)
        assert comparison.cloud_growth > 1.2

    def test_category_churn_contains_added_and_removed(self, analysis_2020, analysis_2021):
        comparison = compare_snapshots(analysis_2020, analysis_2021)
        assert any(churn.added > 0 for churn in comparison.category_churn)
        assert any(churn.removed > 0 for churn in comparison.category_churn)
        ordered = comparison.churn_sorted_by_net_change()
        assert ordered[0].net_change >= ordered[-1].net_change

    def test_framework_growth_keys(self, analysis_2020, analysis_2021):
        comparison = compare_snapshots(analysis_2020, analysis_2021)
        assert "tflite" in comparison.framework_growth
