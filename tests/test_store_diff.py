"""Tests for the vectorised store-level diff engine (repro.store.diff)."""

import numpy as np
import pytest

from repro.store import (DIFF_SPECS, DiffSpec, MetricSpec, ResultStore,
                         diff_kind, diff_kind_reference, diff_stores)
from repro.store.diff import spec_for


def fleet_batch(n, seed, *, region_pool=("amer", "emea", "apac"),
                latency_scale=1.0):
    """A deterministic fleet_events batch with a few distinct group keys."""
    rng = np.random.default_rng(seed)
    regions = np.array(region_pool, dtype="U16")
    return {
        "user_id": np.arange(n, dtype=np.int64),
        "time_s": rng.uniform(0, 86400, n),
        "device_name": np.array(["pixel4"] * n, dtype="U16"),
        "model_name": np.array(["mobilenet"] * n, dtype="U16"),
        "scenario": np.array(["photo"] * n, dtype="U16"),
        "backend": np.array(["cpu"] * n, dtype="U8"),
        "region": regions[rng.integers(0, len(region_pool), n)],
        "target": np.array(["local"] * n, dtype="U8"),
        "latency_ms": rng.uniform(1, 80, n) * latency_scale,
        "wait_ms": rng.uniform(0, 10, n),
        "energy_mj": rng.uniform(1, 50, n),
        "throttle_factor": np.ones(n),
        "battery_fraction": rng.uniform(0.2, 1.0, n),
        "discharge_mah": rng.uniform(0, 1, n),
        "cloud_api": np.array([""] * n, dtype="U16"),
        "cloud_bytes": rng.integers(0, 1000, n),
    }


def make_store(path, batch=None):
    store = ResultStore(path)
    if batch is not None:
        with store.writer() as writer:
            writer.append_batch("fleet_events", batch)
    return store


class TestSpecs:
    def test_every_spec_matches_its_schema(self):
        from repro.store.schema import kind_for

        for kind_name, spec in DIFF_SPECS.items():
            kind = kind_for(kind_name)
            names = {column.name for column in kind.columns}
            assert set(spec.keys) <= names
            for metric in spec.metrics:
                if metric.column is not None:
                    assert metric.column in names

    def test_metric_spec_validation(self):
        with pytest.raises(ValueError):
            MetricSpec("latency_ms", agg="median")
        with pytest.raises(ValueError):
            MetricSpec(None, agg="sum")
        assert MetricSpec(None, agg="count").out_name == "rows"
        assert MetricSpec("latency_ms", agg="sum").out_name == \
            "latency_ms_sum"

    def test_diff_spec_validation(self):
        with pytest.raises(ValueError):
            DiffSpec("executions", (), (MetricSpec(None, agg="count"),))
        with pytest.raises(ValueError):
            DiffSpec("executions", ("model_name",),
                     (MetricSpec(None, agg="count"),
                      MetricSpec(None, agg="count")))

    def test_spec_for_unknown_kind(self):
        with pytest.raises(KeyError):
            spec_for("nope")


class TestDiffEngine:
    def test_self_diff_is_bitexact_zero(self, tmp_path):
        store = make_store(tmp_path / "a.store", fleet_batch(500, 11))
        diff = diff_stores(store, store)
        assert diff.identical
        kind = diff.kinds["fleet_events"]
        assert kind.num_changed == kind.num_added == kind.num_removed == 0
        for metric in kind.metrics:
            assert not kind.changed.any()
            # Deltas are bit-exact zero, not just close to it.
            np.testing.assert_array_equal(kind.delta[metric],
                                          np.zeros(kind.matched))
            np.testing.assert_array_equal(kind.a[metric], kind.b[metric])

    def test_empty_vs_empty(self, tmp_path):
        a = make_store(tmp_path / "a.store")
        b = make_store(tmp_path / "b.store")
        diff = diff_stores(a, b)
        assert diff.identical
        assert diff.kinds == {}

    def test_empty_vs_nonempty_reports_all_added(self, tmp_path):
        a = make_store(tmp_path / "a.store")
        b = make_store(tmp_path / "b.store", fleet_batch(300, 5))
        diff = diff_stores(a, b)
        assert not diff.identical
        kind = diff.kinds["fleet_events"]
        assert kind.rows_a == 0 and kind.rows_b == 300
        assert kind.matched == 0 and kind.num_changed == 0
        assert kind.num_removed == 0 and kind.num_added == 3
        # Mirror-image diff reports the same groups as removed.
        mirrored = diff_stores(b, a).kinds["fleet_events"]
        assert mirrored.num_added == 0 and mirrored.num_removed == 3

    def test_disjoint_group_keys(self, tmp_path):
        a = make_store(tmp_path / "a.store",
                       fleet_batch(200, 5, region_pool=("amer", "emea")))
        b = make_store(tmp_path / "b.store",
                       fleet_batch(200, 5, region_pool=("apac", "mena")))
        kind = diff_stores(a, b).kinds["fleet_events"]
        assert kind.matched == 0 and kind.num_changed == 0
        assert kind.num_removed == 2 and kind.num_added == 2
        removed = {row["region"] for row in kind.removed_rows()}
        added = {row["region"] for row in kind.added_rows()}
        assert removed == {"amer", "emea"}
        assert added == {"apac", "mena"}

    def test_changed_metrics_and_deltas(self, tmp_path):
        a = make_store(tmp_path / "a.store", fleet_batch(400, 7))
        b = make_store(tmp_path / "b.store",
                       fleet_batch(400, 7, latency_scale=1.01))
        kind = diff_stores(a, b).kinds["fleet_events"]
        assert kind.matched == 3 and kind.num_changed == 3
        for row in kind.changed_rows():
            cell = row["latency_ms_sum"]
            assert cell["b"] > cell["a"]
            assert cell["delta"] == cell["b"] - cell["a"]
            # Row counts per group did not change.
            assert row["rows"]["a"] == row["rows"]["b"]

    def test_where_pushdown_restricts_the_diff(self, tmp_path):
        a = make_store(tmp_path / "a.store",
                       fleet_batch(200, 5, region_pool=("amer", "emea")))
        b = make_store(tmp_path / "b.store",
                       fleet_batch(200, 5, region_pool=("amer", "mena")))
        diff = diff_stores(a, b, where=(("region", "==", "amer"),))
        kind = diff.kinds["fleet_events"]
        assert kind.num_added == 0 and kind.num_removed == 0
        assert kind.matched == 1

    def test_mixed_v2_v3_segments_diff_identically(self, tmp_path):
        from repro.store.schema import kind_for

        batch = fleet_batch(60, 3)
        columnar = make_store(tmp_path / "v3.store", batch)
        # The same rows written through the row-oriented JSONL path.
        jsonl = ResultStore(tmp_path / "v2.store")
        names = [column.name for column in kind_for("fleet_events").columns]
        with jsonl.writer(rows_per_segment=16) as writer:
            for i in range(60):
                writer.append_row("fleet_events",
                                  {name: batch[name][i].item()
                                   for name in names})
        formats = {meta.format for meta in jsonl.segments_for("fleet_events")}
        assert formats == {"jsonl"}
        assert diff_stores(columnar, jsonl).identical
        # Mixed store (columnar + jsonl segments) still diffs clean.
        mixed = ResultStore(tmp_path / "mixed.store")
        with mixed.writer() as writer:
            writer.append_batch(
                "fleet_events",
                {name: array[:30] for name, array in batch.items()})
            for i in range(30, 60):
                writer.append_row("fleet_events",
                                  {name: batch[name][i].item()
                                   for name in names})
        assert sorted({meta.format
                       for meta in mixed.segments_for("fleet_events")}) == \
            ["columnar", "jsonl"]
        assert diff_stores(mixed, columnar).identical

    def test_unknown_explicit_kind_raises(self, tmp_path):
        store = make_store(tmp_path / "a.store", fleet_batch(10, 1))
        with pytest.raises(KeyError):
            diff_stores(store, store, kinds=("nope",))

    def test_kind_without_spec_is_skipped(self, tmp_path):
        store = make_store(tmp_path / "a.store", fleet_batch(10, 1))
        spec = spec_for("fleet_events")
        specs = {"fleet_events": spec}
        diff = diff_stores(store, store, specs=specs)
        assert diff.identical and diff.skipped == ()

    def test_summary_shape(self, tmp_path):
        a = make_store(tmp_path / "a.store", fleet_batch(100, 2))
        b = make_store(tmp_path / "b.store",
                       fleet_batch(100, 2, latency_scale=2.0))
        summary = diff_stores(a, b).summary()
        entry = summary["fleet_events"]
        assert entry["rows_a"] == entry["rows_b"] == 100
        assert entry["changed"] == entry["matched"]


class TestAgainstReference:
    """The vectorised engine must agree bit-exactly with the per-row path."""

    def assert_matches_reference(self, store_a, store_b):
        spec = spec_for("fleet_events")
        fast = diff_kind(store_a, store_b, spec)
        slow = diff_kind_reference(store_a, store_b, spec)
        assert fast.matched == slow["matched"]
        fast_changed = {}
        for row in fast.changed_rows(limit=None):
            key = tuple(row[name] for name in spec.keys)
            fast_changed[key] = {
                metric: (row[metric]["a"], row[metric]["b"],
                         row[metric]["delta"])
                for metric in fast.metrics
                if row[metric]["a"] != row[metric]["b"]}
        slow_changed = {
            key: {metric: triple for metric, triple in cells.items()}
            for key, cells in slow["changed"].items()}
        assert set(fast_changed) == set(slow_changed)
        for key, cells in slow_changed.items():
            for metric, (sa, sb, _) in cells.items():
                fa, fb, _ = fast_changed[key][metric]
                # Bit-exact, not approx: same reduction order.
                assert fa == sa and fb == sb
        fast_added = {tuple(row[name] for name in spec.keys)
                      for row in fast.added_rows(limit=None)}
        fast_removed = {tuple(row[name] for name in spec.keys)
                        for row in fast.removed_rows(limit=None)}
        assert fast_added == slow["added"]
        assert fast_removed == slow["removed"]

    def test_perturbed_pair(self, tmp_path):
        a = make_store(tmp_path / "a.store", fleet_batch(800, 17))
        b = make_store(tmp_path / "b.store",
                       fleet_batch(800, 17, latency_scale=1.001))
        self.assert_matches_reference(a, b)

    def test_added_and_removed_groups(self, tmp_path):
        a = make_store(tmp_path / "a.store",
                       fleet_batch(500, 9, region_pool=("amer", "emea",
                                                        "apac")))
        b = make_store(tmp_path / "b.store",
                       fleet_batch(500, 9, region_pool=("emea", "apac",
                                                        "mena")))
        self.assert_matches_reference(a, b)


class TestCli:
    def test_store_diff_exit_codes_and_output(self, tmp_path, capsys):
        from repro.cli import main

        a = make_store(tmp_path / "a.store", fleet_batch(200, 7))
        make_store(tmp_path / "b.store",
                   fleet_batch(200, 7, latency_scale=1.01))
        assert main(["store", "diff", str(tmp_path / "a.store"),
                     str(tmp_path / "a.store")]) == 0
        assert "identical" in capsys.readouterr().out

        assert main(["store", "diff", str(tmp_path / "a.store"),
                     str(tmp_path / "b.store")]) == 1
        out = capsys.readouterr().out
        assert "latency_ms_sum" in out and "~" in out

    def test_store_diff_bad_store_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        a = make_store(tmp_path / "a.store", fleet_batch(10, 1))
        bad = tmp_path / "bad.store"
        bad.mkdir()
        (bad / "MANIFEST.json").write_text("{not json")
        assert main(["store", "diff", str(a.root), str(bad)]) == 2
        assert capsys.readouterr().err
