"""Unit tests for model transformation passes: quantisation, pruning, clustering, fine-tuning."""

import pytest

from repro.dnn.clustering import CLUSTER_PREFIX, cluster, clustering_report
from repro.dnn.finetune import finetune_last_layers
from repro.dnn.layers import OpType
from repro.dnn.pruning import PRUNE_PREFIX, measure_sparsity, prune, pruning_report
from repro.dnn.quantization import QuantizationScheme, quantization_report, quantize
from repro.dnn.tensor import DType
from repro.dnn.zoo import blazeface, mobilenet_v1


@pytest.fixture(scope="module")
def base_graph():
    return blazeface(weight_seed=11)


class TestQuantization:
    def test_full_int8_adds_dequantize_and_int8(self, base_graph):
        quantized = quantize(base_graph, QuantizationScheme.FULL_INT8)
        report = quantization_report(quantized)
        assert report.has_dequantize_layer
        assert report.int8_weight_fraction == pytest.approx(1.0)
        assert report.int8_activation_fraction == pytest.approx(1.0)

    def test_weight_only_has_no_dequantize(self, base_graph):
        quantized = quantize(base_graph, QuantizationScheme.WEIGHT_ONLY)
        report = quantization_report(quantized)
        assert not report.has_dequantize_layer
        assert report.uses_int8_weights
        assert not report.uses_int8_activations

    def test_dynamic_range_keeps_float_activations(self, base_graph):
        quantized = quantize(base_graph, QuantizationScheme.DYNAMIC_RANGE)
        report = quantization_report(quantized)
        assert report.uses_int8_weights
        assert not report.uses_int8_activations
        assert report.has_dequantize_layer

    def test_float16_halves_model_size(self, base_graph):
        quantized = quantize(base_graph, QuantizationScheme.FLOAT16)
        assert quantized.model_size_bytes() == pytest.approx(
            base_graph.model_size_bytes() / 2, rel=0.01)

    def test_a16w8_hybrid_scheme(self, base_graph):
        quantized = quantize(base_graph, QuantizationScheme.A16W8)
        dtypes = {layer.activation_dtype for layer in quantized.layers if layer.is_compute}
        assert dtypes == {DType.INT16}

    def test_quantization_preserves_structure(self, base_graph):
        quantized = quantize(base_graph, QuantizationScheme.FULL_INT8)
        # Same layers plus the appended dequantize output nodes.
        assert quantized.num_layers >= base_graph.num_layers
        assert quantized.total_parameters() == base_graph.total_parameters()

    def test_unquantized_report_is_clean(self, base_graph):
        report = quantization_report(base_graph)
        assert not report.has_dequantize_layer
        assert report.int8_weight_fraction == 0.0


class TestPruning:
    def test_prune_prefix_added(self, base_graph):
        pruned = prune(base_graph, sparsity=0.5)
        report = pruning_report(pruned)
        assert report.has_prune_prefix
        assert report.pruned_layer_count > 0

    def test_prune_increases_measured_sparsity(self, base_graph):
        pruned = prune(base_graph, sparsity=0.6)
        assert measure_sparsity(pruned) > measure_sparsity(base_graph) + 0.4

    def test_prune_without_prefix(self, base_graph):
        pruned = prune(base_graph, sparsity=0.5, keep_prefix=False)
        assert not pruning_report(pruned).has_prune_prefix

    def test_prune_rejects_bad_sparsity(self, base_graph):
        with pytest.raises(ValueError):
            prune(base_graph, sparsity=1.0)

    def test_pruned_graph_references_remain_valid(self, base_graph):
        pruned = prune(base_graph, sparsity=0.5)
        names = {layer.name for layer in pruned.layers}
        for layer in pruned.layers:
            for dep in layer.inputs:
                assert dep in names or dep.startswith("input_")

    def test_unpruned_sparsity_is_low(self, base_graph):
        assert measure_sparsity(base_graph) < 0.05


class TestClustering:
    def test_cluster_prefix_and_report(self, base_graph):
        clustered = cluster(base_graph, num_clusters=32)
        report = clustering_report(clustered)
        assert report.has_cluster_prefix
        assert report.num_clusters == 32

    def test_clustering_does_not_change_size(self, base_graph):
        clustered = cluster(base_graph, num_clusters=16)
        assert clustered.model_size_bytes() == base_graph.model_size_bytes()
        assert clustered.total_flops() == base_graph.total_flops()

    def test_cluster_rejects_too_few_clusters(self, base_graph):
        with pytest.raises(ValueError):
            cluster(base_graph, num_clusters=1)

    def test_clean_graph_has_no_cluster_traces(self, base_graph):
        assert not clustering_report(base_graph).has_cluster_prefix

    def test_prefixes_not_double_applied(self, base_graph):
        twice = cluster(cluster(base_graph))
        assert not any(layer.name.startswith(CLUSTER_PREFIX * 2) for layer in twice.layers)


class TestFinetuning:
    def test_finetune_changes_only_last_layers(self):
        base = mobilenet_v1(weight_seed=5)
        derived = finetune_last_layers(base, num_layers=2)
        assert derived.differing_layer_count(base) == 2
        assert derived.shared_weight_fraction(base) > 0.2

    def test_finetune_requires_weighted_layers(self):
        base = mobilenet_v1(weight_seed=5)
        with pytest.raises(ValueError):
            finetune_last_layers(base, num_layers=0)

    def test_finetune_records_provenance(self):
        base = blazeface(weight_seed=5)
        derived = finetune_last_layers(base, num_layers=1, name="custom_face")
        assert derived.name == "custom_face"
        assert derived.metadata.extra["finetuned_from"] == base.name

    def test_distinct_offsets_produce_distinct_models(self):
        base = blazeface(weight_seed=5)
        one = finetune_last_layers(base, num_layers=2, seed_offset=1)
        two = finetune_last_layers(base, num_layers=2, seed_offset=2)
        assert one.weights_checksum() != two.weights_checksum()
