"""Unit tests for the runtime simulation: backends, latency/energy models, executor."""

import pytest

from repro.devices.device import device_by_name
from repro.devices.scheduler import ThreadConfig
from repro.dnn.quantization import QuantizationScheme, quantize
from repro.dnn.zoo import autocomplete_lstm, blazeface, mobilenet_v1
from repro.runtime import (
    Backend,
    BACKEND_PROFILES,
    EnergyModel,
    Executor,
    LatencyModel,
    UnsupportedModelError,
    profile_for,
)


@pytest.fixture(scope="module")
def face_model():
    return blazeface(weight_seed=1)


@pytest.fixture(scope="module")
def classifier():
    return mobilenet_v1(weight_seed=1)


class TestBackendProfiles:
    def test_all_backends_have_profiles(self):
        assert set(BACKEND_PROFILES) == set(Backend)

    def test_profile_lookup_accepts_strings(self):
        assert profile_for("cpu").backend is Backend.CPU
        assert profile_for(Backend.SNPE_DSP).target == "dsp"

    def test_recurrent_models_unsupported_on_accelerators(self):
        text_model = autocomplete_lstm()
        assert not profile_for(Backend.GPU).supports_graph(text_model)
        assert not profile_for(Backend.SNPE_DSP).supports_graph(text_model)
        assert profile_for(Backend.CPU).supports_graph(text_model)

    def test_framework_restrictions(self, face_model):
        caffe_model = face_model.with_metadata(framework="caffe")
        assert not profile_for(Backend.XNNPACK).supports_graph(caffe_model)
        assert profile_for(Backend.SNPE_CPU).supports_graph(caffe_model)


class TestLatencyModel:
    def test_latency_positive_and_scales_with_flops(self, face_model, classifier):
        model = LatencyModel(device_by_name("Q845"))
        small = model.graph_latency_ms(face_model)
        large = model.graph_latency_ms(classifier)
        assert 0 < small < large

    def test_faster_device_is_faster(self, classifier):
        slow = LatencyModel(device_by_name("A20")).graph_latency_ms(classifier)
        fast = LatencyModel(device_by_name("S21")).graph_latency_ms(classifier)
        assert fast < slow

    def test_batch_increases_latency_sublinearly_per_sample(self, face_model):
        model = LatencyModel(device_by_name("S21"))
        single = model.graph_latency_ms(face_model, batch=1)
        batched = model.graph_latency_ms(face_model, batch=8)
        assert batched > single
        assert batched / 8 < single

    def test_layer_costs_cover_all_layers(self, face_model):
        model = LatencyModel(device_by_name("Q845"))
        costs = model.layer_costs(face_model)
        assert len(costs) == face_model.num_layers
        assert all(cost.total_ms >= cost.overhead_ms for cost in costs)

    def test_memory_bound_detection(self, classifier):
        model = LatencyModel(device_by_name("A20"))
        costs = model.layer_costs(classifier)
        assert any(cost.is_memory_bound for cost in costs)
        assert any(not cost.is_memory_bound for cost in costs)

    def test_thread_config_affects_latency(self, classifier):
        model = LatencyModel(device_by_name("A70"))
        two = model.graph_latency_ms(classifier, threads=ThreadConfig(2))
        pinned = model.graph_latency_ms(classifier, threads=ThreadConfig(4, 2))
        assert two < pinned

    def test_missing_accelerator_raises(self, face_model):
        model = LatencyModel(device_by_name("A20"))
        with pytest.raises(ValueError):
            model.effective_gflops(profile_for(Backend.SNPE_DSP))


class TestEnergyModel:
    def test_power_components(self):
        model = EnergyModel(device_by_name("Q845"))
        breakdown = model.power_breakdown(Backend.CPU)
        assert breakdown.total_watts == pytest.approx(
            breakdown.idle_watts + breakdown.compute_watts)
        assert breakdown.screen_watts == 0.0

    def test_screen_power_included_when_requested(self):
        with_screen = EnergyModel(device_by_name("Q845"), include_screen=True)
        without = EnergyModel(device_by_name("Q845"), include_screen=False)
        assert with_screen.inference_power_watts() > without.inference_power_watts()

    def test_newer_generations_draw_more_power(self):
        """Fig. 10b: newer SoC generations consistently draw more power."""
        p845 = EnergyModel(device_by_name("Q845")).inference_power_watts()
        p855 = EnergyModel(device_by_name("Q855")).inference_power_watts()
        p888 = EnergyModel(device_by_name("Q888")).inference_power_watts()
        assert p845 < p855 < p888

    def test_dsp_power_below_cpu_power(self):
        model = EnergyModel(device_by_name("Q845"))
        assert model.inference_power_watts(Backend.SNPE_DSP) < \
            model.inference_power_watts(Backend.CPU)

    def test_energy_and_efficiency(self):
        model = EnergyModel(device_by_name("Q845"))
        energy = model.inference_energy_mj(latency_ms=10.0)
        assert energy == pytest.approx(model.inference_power_watts() * 10.0)
        assert model.efficiency_mflops_per_sw(flops=10_000_000, latency_ms=10.0) > 0
        with pytest.raises(ValueError):
            model.efficiency_mflops_per_sw(flops=1, latency_ms=0.0)


class TestExecutor:
    def test_run_produces_consistent_metrics(self, face_model):
        result = Executor(device_by_name("Q845"), seed=1).run(face_model)
        assert result.latency_ms > 0
        assert result.energy_mj == pytest.approx(result.power_watts * result.latency_ms)
        assert result.throughput_ips == pytest.approx(1000.0 / result.latency_ms)
        assert result.flops == face_model.total_flops()

    def test_results_are_reproducible_with_same_seed(self, face_model):
        a = Executor(device_by_name("Q845"), seed=7).run(face_model)
        b = Executor(device_by_name("Q845"), seed=7).run(face_model)
        assert a.latency_ms == pytest.approx(b.latency_ms)

    def test_device_tier_ordering(self, classifier):
        """Fig. 9: low-tier slower than mid-tier slower than high-end."""
        latencies = {
            name: Executor(device_by_name(name), seed=0).run(classifier).latency_ms
            for name in ("A20", "A70", "S21")
        }
        assert latencies["A20"] > latencies["A70"] > latencies["S21"]

    def test_generation_ordering(self, classifier):
        """Fig. 9: Q845 slower than Q855 slower than Q888."""
        latencies = {
            name: Executor(device_by_name(name), seed=0).run(classifier).latency_ms
            for name in ("Q845", "Q855", "Q888")
        }
        assert latencies["Q845"] > latencies["Q855"] > latencies["Q888"]

    def test_unsupported_backend_on_wrong_vendor(self, face_model):
        executor = Executor(device_by_name("A20"))
        with pytest.raises(UnsupportedModelError):
            executor.run(face_model, Backend.SNPE_DSP)
        assert not executor.supports(face_model, Backend.SNPE_DSP)

    def test_unsupported_framework(self, face_model):
        ncnn_model = face_model.with_metadata(framework="ncnn")
        executor = Executor(device_by_name("Q845"))
        with pytest.raises(UnsupportedModelError):
            executor.run(ncnn_model, Backend.XNNPACK)

    def test_recurrent_model_rejected_on_dsp(self):
        executor = Executor(device_by_name("Q845"))
        with pytest.raises(UnsupportedModelError):
            executor.run(autocomplete_lstm(), Backend.SNPE_DSP)

    def test_run_many_skips_unsupported(self, face_model):
        executor = Executor(device_by_name("Q845"))
        results = executor.run_many([face_model, autocomplete_lstm()], Backend.SNPE_DSP)
        assert len(results) == 1

    def test_batching_improves_throughput(self, face_model):
        executor = Executor(device_by_name("S21"), seed=0)
        single = executor.run(face_model, batch_size=1)
        batched = executor.run(face_model, batch_size=10)
        assert batched.throughput_ips > single.throughput_ips

    def test_sustained_load_throttles_phones(self, classifier):
        executor = Executor(device_by_name("A20"), seed=0)
        cold = executor.run(classifier)
        hot = executor.run(classifier, sustained_seconds=1800)
        assert hot.latency_ms > cold.latency_ms

    def test_quantized_model_faster_on_dsp_than_cpu(self, face_model):
        executor = Executor(device_by_name("Q845"), seed=0)
        quantized = quantize(face_model, QuantizationScheme.FULL_INT8)
        cpu = executor.run(face_model, Backend.CPU)
        dsp = executor.run(quantized, Backend.SNPE_DSP)
        assert dsp.latency_ms < cpu.latency_ms

    def test_invalid_arguments(self, face_model):
        executor = Executor(device_by_name("Q845"))
        with pytest.raises(ValueError):
            executor.run(face_model, num_inferences=0)
        with pytest.raises(ValueError):
            executor.run(face_model, warmup=-1)


class TestBackendComparisons:
    """Sec. 6.3 (Figs. 13-14) qualitative orderings on the Q845 board."""

    @pytest.fixture(scope="class")
    def q845_results(self, face_model):
        executor = Executor(device_by_name("Q845"), seed=0)
        return {
            backend: executor.run(face_model, backend)
            for backend in (Backend.CPU, Backend.XNNPACK, Backend.NNAPI, Backend.GPU,
                            Backend.SNPE_CPU, Backend.SNPE_GPU, Backend.SNPE_DSP)
        }

    def test_xnnpack_slightly_faster_than_cpu(self, q845_results):
        assert q845_results[Backend.XNNPACK].latency_ms < q845_results[Backend.CPU].latency_ms

    def test_nnapi_slower_than_cpu(self, q845_results):
        assert q845_results[Backend.NNAPI].latency_ms > q845_results[Backend.CPU].latency_ms

    def test_snpe_dsp_fastest_and_most_efficient(self, q845_results):
        dsp = q845_results[Backend.SNPE_DSP]
        assert dsp.latency_ms == min(r.latency_ms for r in q845_results.values())
        assert dsp.efficiency_mflops_per_sw == max(
            r.efficiency_mflops_per_sw for r in q845_results.values())

    def test_snpe_gpu_faster_than_plain_gpu(self, q845_results):
        assert q845_results[Backend.SNPE_GPU].latency_ms < q845_results[Backend.GPU].latency_ms

    def test_gpu_faster_than_cpu(self, q845_results):
        assert q845_results[Backend.GPU].latency_ms < q845_results[Backend.CPU].latency_ms
