"""Tests for the persistent results store: durability, round-trips, queries."""

import json

import numpy as np
import pytest

from repro.core import reports
from repro.devices.device import device_by_name
from repro.dnn.zoo import autocomplete_lstm, blazeface, mobilenet_v1
from repro.runtime import Backend, Executor, SweepRunner, SweepSpec
from repro.store import (ReportServer, ResultStore, StoreCorruptionError,
                         ingest_snapshot)
from repro.store.schema import (app_record_from_row, app_record_to_row,
                                execution_result_from_row,
                                execution_result_to_row, kind_for,
                                kind_of_object, scenario_result_from_row,
                                scenario_result_to_row)


@pytest.fixture(scope="module")
def results():
    """A deterministic batch of measurements across two devices/backends."""
    out = []
    for name, seed in (("S21", 3), ("A20", 4)):
        executor = Executor(device_by_name(name), seed=seed)
        for graph in (mobilenet_v1(weight_seed=2), blazeface(weight_seed=2),
                      autocomplete_lstm(weight_seed=2)):
            out.append(executor.run(graph, Backend.CPU, num_inferences=3))
            if graph.name != autocomplete_lstm().name:
                out.append(executor.run(graph, Backend.XNNPACK,
                                        num_inferences=3))
    return out


@pytest.fixture()
def populated(tmp_path, results):
    """A store holding ``results`` across several small segments."""
    store = ResultStore(tmp_path / "campaign.store")
    with store.writer(rows_per_segment=3) as writer:
        for result in results:
            writer.append(result)
    return store


class TestSchemaRoundTrip:
    def test_execution_result_exact(self, results):
        for result in results:
            row = execution_result_to_row(result)
            assert execution_result_from_row(row) == result

    def test_execution_result_survives_json(self, results):
        # Float repr round-trips exactly through the JSONL row log.
        for result in results:
            row = json.loads(json.dumps(execution_result_to_row(result)))
            assert execution_result_from_row(row) == result

    def test_app_record_round_trip(self):
        from repro.core.records import AppRecord

        app = AppRecord(package="com.x", title="X", category="TOOLS",
                        downloads=10, rating=4.5,
                        frameworks_in_code=("tflite",), native_libraries=(),
                        accelerators=("gpu", "dsp"),
                        cloud_apis=("Vision/Face",), cloud_providers=("Google",),
                        model_count=2, candidate_file_count=3,
                        apk_size_bytes=123)
        assert app_record_from_row(app_record_to_row(app)) == app

    def test_scenario_result_round_trip(self):
        from repro.core.scenarios import ScenarioResult

        scenario = ScenarioResult(scenario="Typing", device="Q845",
                                  model_name="lstm", inference_count=275,
                                  energy_joules=1.25,
                                  battery_discharge_mah=0.09,
                                  battery_fraction=2.3e-05)
        assert scenario_result_from_row(
            scenario_result_to_row(scenario)) == scenario

    def test_object_dispatch(self, results):
        assert kind_of_object(results[0]).name == "executions"
        with pytest.raises(TypeError):
            kind_of_object(object())

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            kind_for("nope")


class TestWriterAndReopen:
    def test_round_trip_through_disk(self, populated, results):
        reopened = ResultStore(populated.root)
        assert reopened.query("executions").objects() == results

    def test_segment_rotation(self, populated, results):
        segments = populated.segments_for("executions")
        assert len(segments) == -(-len(results) // 3)
        assert sum(meta.rows for meta in segments) == len(results)
        # Sealed logs and caches both exist on disk.
        for meta in segments:
            assert (populated.segments_dir / meta.log_filename).exists()
            assert (populated.segments_dir / meta.cache_filename).exists()

    def test_writer_validates_rows(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        with store.writer() as writer:
            with pytest.raises(ValueError):
                writer.append_row("executions", {"model_name": "m"})

    def test_closed_writer_refuses_appends(self, tmp_path, results):
        store = ResultStore(tmp_path / "s")
        writer = store.writer()
        writer.append(results[0])
        writer.close()
        with pytest.raises(RuntimeError):
            writer.append(results[0])

    def test_open_store_sees_commits_after_refresh(self, tmp_path, results):
        store = ResultStore(tmp_path / "s")
        reader = ResultStore(tmp_path / "s")
        with store.writer(rows_per_segment=2) as writer:
            writer.append_many(results[:4])
        assert reader.num_rows("executions") == 0  # stale view
        reader.refresh()
        assert reader.num_rows("executions") == 4

    def test_ingest_snapshot(self, tmp_path):
        from repro.android.appgen import AppGenerator, GeneratorConfig
        from repro.android.playstore import PlayStore
        from repro.core.pipeline import GaugeNN

        store = PlayStore([AppGenerator(
            GeneratorConfig.snapshot_2021(scale=0.02)).generate()])
        analysis = GaugeNN(store).analyze_snapshot("2021")
        result_store = ResultStore(tmp_path / "s")
        rows = ingest_snapshot(result_store, analysis)
        assert rows == len(analysis.apps) + len(analysis.models)
        assert result_store.num_rows("apps") == len(analysis.apps)
        assert result_store.num_rows("models") == len(analysis.models)
        # App records round-trip exactly through the store.
        assert result_store.query("apps").objects() == analysis.apps


class TestDurability:
    """Ingest -> kill mid-segment (simulated) -> reopen -> committed rows only."""

    def test_uncommitted_segment_is_invisible(self, populated, results):
        committed = populated.query("executions").objects()
        # Simulate a crash after a row log was sealed but before the manifest
        # commit: a well-formed segment file that no manifest entry references.
        orphan = populated.segments_dir / "executions-000099.jsonl"
        orphan.write_text(json.dumps(
            execution_result_to_row(results[0])) + "\n")
        reopened = ResultStore(populated.root)
        assert reopened.query("executions").objects() == committed

    def test_torn_tmp_files_are_invisible(self, populated, results):
        committed = populated.query("executions").objects()
        # Simulate a crash mid-write: partial tmp files for a segment, its
        # cache and the manifest, including a truncated (torn) JSON line.
        half_row = json.dumps(execution_result_to_row(results[0]))[:37]
        (populated.segments_dir / "executions-000100.jsonl.tmp").write_text(
            json.dumps(execution_result_to_row(results[1])) + "\n" + half_row)
        (populated.segments_dir / "executions-000100.npz.tmp").write_bytes(b"\x00")
        (populated.root / "MANIFEST.json.tmp").write_text("{\"format_")
        reopened = ResultStore(populated.root)
        assert reopened.query("executions").objects() == committed

    def test_reopen_after_partial_flush(self, tmp_path, results):
        # Writer dies before flushing its tail: the committed prefix is exactly
        # the sealed segments, nothing more, nothing less.
        store = ResultStore(tmp_path / "s")
        writer = store.writer(rows_per_segment=4)
        writer.append_many(results)  # seals len(results)//4 full segments
        committed = writer.rows_committed
        assert committed == len(results) - len(results) % 4
        del writer  # crash: pending tail never flushed
        reopened = ResultStore(tmp_path / "s")
        assert reopened.num_rows("executions") == committed
        assert reopened.query("executions").objects() == results[:committed]

    def test_corrupted_segment_detected(self, populated):
        meta = populated.segments_for("executions")[0]
        path = populated.segments_dir / meta.log_filename
        path.write_text(path.read_text().replace("latency_ms", "latency_MS"))
        with pytest.raises(StoreCorruptionError):
            ResultStore(populated.root).verify_integrity()
        with pytest.raises(StoreCorruptionError):
            ResultStore(populated.root, verify=True).query(
                "executions").objects()

    def test_missing_column_cache_rebuilt(self, populated, results):
        for meta in populated.segments_for("executions"):
            (populated.segments_dir / meta.cache_filename).unlink()
        reopened = ResultStore(populated.root)
        assert reopened.query("executions").objects() == results
        # The rebuild also rewrote the caches.
        for meta in reopened.segments_for("executions"):
            assert (reopened.segments_dir / meta.cache_filename).exists()

    def test_stale_column_cache_ignored(self, populated, results):
        # A cache from a different generation (checksum mismatch) is rebuilt
        # from the row log instead of being trusted.
        segments = populated.segments_for("executions")
        first = populated.segments_dir / segments[0].cache_filename
        second = populated.segments_dir / segments[1].cache_filename
        first.write_bytes(second.read_bytes())
        reopened = ResultStore(populated.root)
        assert reopened.query("executions").objects() == results


class TestQueryEngine:
    def test_equality_filter(self, populated, results):
        expected = [r for r in results if r.device_name == "S21"]
        query = populated.query("executions").where(device_name="S21")
        assert query.objects() == expected

    def test_enum_values_accepted(self, populated, results):
        expected = [r for r in results if r.backend is Backend.XNNPACK]
        assert populated.query("executions").where(
            backend=Backend.XNNPACK).objects() == expected

    def test_range_filter(self, populated, results):
        cutoff = sorted(r.latency_ms for r in results)[len(results) // 2]
        expected = [r for r in results if r.latency_ms < cutoff]
        assert populated.query("executions").where(
            "latency_ms", "<", cutoff).objects() == expected

    def test_in_filter(self, populated, results):
        wanted = {mobilenet_v1().name, blazeface().name}
        expected = [r for r in results if r.model_name in wanted]
        assert populated.query("executions").where(
            "model_name", "in", sorted(wanted)).objects() == expected

    def test_count_and_arrays(self, populated, results):
        query = populated.query("executions")
        assert query.count() == len(results)
        arrays = populated.query("executions").arrays("latency_ms", "flops")
        assert arrays["latency_ms"].dtype == np.float64
        assert arrays["latency_ms"].tolist() == [r.latency_ms for r in results]
        assert arrays["flops"].tolist() == [r.flops for r in results]

    def test_unknown_column_rejected(self, populated):
        with pytest.raises(KeyError):
            populated.query("executions").where(nonexistent=1)
        with pytest.raises(KeyError):
            populated.query("executions").group_by("nonexistent")

    def test_type_mismatched_predicate_rejected(self, populated):
        # A string against a numeric column fails at build time with a clear
        # error, not deep inside a stats comparison.
        with pytest.raises(ValueError):
            populated.query("executions").where(batch_size="abc")
        with pytest.raises(ValueError):
            populated.query("executions").where("latency_ms", "<", "fast")
        with pytest.raises(ValueError):
            populated.query("executions").where(device_name=7)

    def test_aggregate_over_no_matching_rows(self, populated):
        out = populated.query("executions").where(
            device_name="NOPE").agg(
            n=("latency_ms", "count"),
            lo=("latency_ms", "min"),
            mid=("latency_ms", "median")).aggregate()
        assert out == {"n": 0, "lo": None, "mid": None}
        grouped = populated.query("executions").where(
            device_name="NOPE").group_by("backend").agg(
            n=("latency_ms", "count")).aggregate()
        assert grouped == []

    def test_aggregate_ungrouped(self, populated, results):
        out = populated.query("executions").agg(
            mean_ms=("latency_ms", "mean"),
            total=("latency_ms", "count")).aggregate()
        assert out["total"] == len(results)
        assert out["mean_ms"] == pytest.approx(
            np.mean([r.latency_ms for r in results]))

    def test_aggregate_grouped_matches_manual(self, populated, results):
        out = populated.query("executions").group_by(
            "device_name", "backend").agg(
            n=("latency_ms", "count"),
            median_mj=("energy_mj", "median")).aggregate()
        manual = {}
        for r in results:
            manual.setdefault((r.device_name, r.backend.value), []).append(
                r.energy_mj)
        assert {(row["device_name"], row["backend"]) for row in out} \
            == set(manual)
        for row in out:
            group = manual[(row["device_name"], row["backend"])]
            assert row["n"] == len(group)
            assert row["median_mj"] == pytest.approx(np.median(group))

    def test_predicate_pushdown_skips_segments(self, tmp_path, results):
        # One segment per device: a device-equality query must only scan one.
        store = ResultStore(tmp_path / "s")
        by_device = {}
        for r in results:
            by_device.setdefault(r.device_name, []).append(r)
        with store.writer(rows_per_segment=10 ** 6) as writer:
            for device_results in by_device.values():
                writer.append_many(device_results)
                writer.flush()
        query = store.query("executions").where(device_name="A20")
        assert query.objects() == by_device["A20"]
        assert query.stats.segments_total == 2
        assert query.stats.segments_skipped == 1
        assert query.stats.segments_scanned == 1

    def test_numeric_pushdown(self, populated, results):
        top = max(r.latency_ms for r in results)
        query = populated.query("executions").where("latency_ms", ">", top)
        assert query.objects() == []
        assert query.stats.segments_scanned < query.stats.segments_total \
            or query.stats.segments_total == query.stats.segments_skipped

    def test_summary_kind_has_no_objects(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        with pytest.raises(TypeError):
            store.query("models").objects()


class TestServing:
    @pytest.fixture()
    def by_device(self, results):
        grouped = {}
        for result in results:
            grouped.setdefault(result.device_name, []).append(result)
        return grouped

    def test_latency_ecdf_bit_identical(self, populated, by_device):
        assert ReportServer(populated).latency_ecdf_by_device() \
            == reports.latency_ecdf_by_device(by_device)

    def test_energy_distributions_bit_identical(self, populated, by_device):
        server = ReportServer(populated)
        assert server.energy_distributions() \
            == reports.energy_distributions(by_device)
        assert server.energy_distributions(drop_outliers=False) \
            == reports.energy_distributions(by_device, drop_outliers=False)

    def test_latency_vs_flops_bit_identical(self, populated, by_device):
        server = ReportServer(populated)
        for device, device_results in by_device.items():
            assert server.latency_vs_flops(device) \
                == reports.latency_vs_flops(device_results)

    def test_reports_accept_store_directly(self, populated, by_device):
        assert reports.latency_ecdf_by_device(populated) \
            == reports.latency_ecdf_by_device(by_device)
        assert reports.energy_distributions(populated) \
            == reports.energy_distributions(by_device)
        assert reports.latency_vs_flops(populated, "S21") \
            == reports.latency_vs_flops(by_device["S21"])
        with pytest.raises(ValueError):
            reports.latency_vs_flops(populated)  # store needs a device name

    def test_incremental_refresh(self, tmp_path, results):
        store = ResultStore(tmp_path / "s")
        server = ReportServer(store)
        with store.writer(rows_per_segment=4) as writer:
            writer.append_many(results[:4])
        assert server.refresh() == 1
        first = server.latency_ecdf_by_device()
        with store.writer(rows_per_segment=4) as writer:
            writer.append_many(results[4:8])
        # Only the newly committed segment is loaded on refresh.
        assert server.refresh() == 1
        assert server.refresh() == 0
        second = server.latency_ecdf_by_device()
        assert sum(len(e.values) for e in second.values()) == 8
        assert second != first

    def test_cloud_api_usage_matches_analysis(self, tmp_path):
        from repro.android.appgen import AppGenerator, GeneratorConfig
        from repro.android.playstore import PlayStore
        from repro.core.pipeline import GaugeNN

        play = PlayStore([AppGenerator(
            GeneratorConfig.snapshot_2021(scale=0.02)).generate()])
        analysis = GaugeNN(play).analyze_snapshot("2021")
        store = ResultStore(tmp_path / "s")
        ingest_snapshot(store, analysis)
        assert ReportServer(store).cloud_api_usage() \
            == reports.cloud_api_usage(analysis)
        assert reports.cloud_api_usage(store, min_apps=2) \
            == reports.cloud_api_usage(analysis, min_apps=2)


class TestEcdfStorePath:
    def test_from_sorted_equals_from_samples(self, results):
        latencies = [r.latency_ms for r in results]
        from repro.analysis.ecdf import Ecdf

        assert Ecdf.from_sorted(sorted(latencies)) \
            == Ecdf.from_samples(latencies)
        with pytest.raises(ValueError):
            Ecdf.from_sorted(())

    def test_from_column(self, populated, results):
        from repro.analysis.ecdf import Ecdf

        ecdf = Ecdf.from_column(populated, "executions", "latency_ms",
                                device_name="S21")
        expected = Ecdf.from_samples(
            r.latency_ms for r in results if r.device_name == "S21")
        assert ecdf == expected


class TestSweepIntegration:
    @pytest.fixture(scope="class")
    def spec(self):
        return SweepSpec(
            devices=(device_by_name("Q845"), device_by_name("S21")),
            graphs=(mobilenet_v1(weight_seed=2), blazeface(weight_seed=2)),
            backends=(Backend.CPU, Backend.XNNPACK),
            num_inferences=3,
            seed=11,
        )

    def test_run_to_store_matches_run(self, tmp_path, spec):
        in_memory = SweepRunner(spec, max_workers=2).run()
        store = ResultStore(tmp_path / "s")
        rows = SweepRunner(spec, max_workers=4).run_to_store(
            store, rows_per_segment=5)
        assert rows == len(in_memory)
        assert store.query("executions").objects() == in_memory

    def test_run_to_store_accepts_path(self, tmp_path, spec):
        rows = SweepRunner(spec).run_to_store(tmp_path / "from_path")
        assert ResultStore(tmp_path / "from_path").num_rows("executions") == rows

    def test_store_reports_match_in_memory_reports(self, tmp_path, spec):
        results = SweepRunner(spec).run()
        by_device = SweepRunner.results_by_device(results)
        store = ResultStore(tmp_path / "s")
        SweepRunner(spec).run_to_store(store, rows_per_segment=3)
        assert reports.latency_ecdf_by_device(store) \
            == reports.latency_ecdf_by_device(by_device)
        assert reports.energy_distributions(store) \
            == reports.energy_distributions(by_device)

    def test_benchmarker_store_sink(self, tmp_path):
        from repro.core.benchmarker import BenchmarkJob, DeviceBenchmarker

        store = ResultStore(tmp_path / "s")
        with store.writer() as writer:
            bench = DeviceBenchmarker(device_by_name("Q845"),
                                      store_sink=writer)
            record = bench.run_job(BenchmarkJob(
                graph=mobilenet_v1(weight_seed=2), num_inferences=3))
            assert "store_append" in record.workflow_events
        assert store.query("executions").objects() == [record.result]

    def test_pipeline_benchmark_with_store(self, tmp_path):
        from repro.android.appgen import AppGenerator, GeneratorConfig
        from repro.android.playstore import PlayStore
        from repro.core.pipeline import GaugeNN
        from repro.devices.device import DEV_BOARDS

        play = PlayStore([AppGenerator(
            GeneratorConfig.snapshot_2021(scale=0.02)).generate()])
        analysis = GaugeNN(play).analyze_snapshot("2021")
        store = ResultStore(tmp_path / "s")
        GaugeNN.persist_snapshot(analysis, store)
        results = GaugeNN.benchmark_unique_models(
            analysis, DEV_BOARDS, num_inferences=2, max_workers=3,
            store=store)
        assert results
        assert store.query("executions").objects() == results
        assert store.num_rows("apps") == len(analysis.apps)


class TestCompaction:
    @pytest.fixture()
    def multi_kind(self, tmp_path, results):
        """A store with two kinds, each sharded into several small segments."""
        from repro.core.scenarios import ScenarioResult

        store = ResultStore(tmp_path / "compact.store")
        with store.writer(rows_per_segment=2) as writer:
            for index, result in enumerate(results):
                writer.append(result)
                writer.append(ScenarioResult(
                    scenario="Typing", device=result.device_name,
                    model_name=result.model_name, inference_count=275,
                    energy_joules=float(index) + 0.125,
                    battery_discharge_mah=0.25 * index,
                    battery_fraction=0.001 * index))
        return store

    def test_merges_to_one_segment_per_kind(self, multi_kind):
        from repro.store import compact_store

        before = len(multi_kind.segments)
        assert before > 2
        stats = compact_store(multi_kind)
        assert stats.segments_before == before
        assert stats.segments_after == len(multi_kind.segments) == 2
        assert set(stats.kinds_compacted) == {"executions", "scenarios"}
        assert multi_kind.verify_integrity() == 2

    def test_queries_bit_identical_across_compaction(self, multi_kind, results):
        from repro.store import compact_store

        before_rows = multi_kind.query("executions").rows()
        before_objects = multi_kind.query("executions").objects()
        before_agg = (multi_kind.query("executions")
                      .group_by("device_name", "backend")
                      .agg(n=("latency_ms", "count"),
                           mean_ms=("latency_ms", "mean"),
                           p99=("latency_ms", "p99"))
                      .aggregate())
        compact_store(multi_kind)

        reopened = ResultStore(multi_kind.root)
        assert reopened.query("executions").rows() == before_rows
        assert reopened.query("executions").objects() == before_objects == results
        assert (reopened.query("executions")
                .group_by("device_name", "backend")
                .agg(n=("latency_ms", "count"),
                     mean_ms=("latency_ms", "mean"),
                     p99=("latency_ms", "p99"))
                .aggregate()) == before_agg

    def test_old_files_removed_and_sequence_advances(self, multi_kind):
        from repro.store import compact_store

        sequence_before = multi_kind.sequence
        old_names = {meta.name for meta in multi_kind.segments}
        stats = compact_store(multi_kind)
        assert stats.files_removed > 0
        assert multi_kind.sequence > sequence_before
        remaining = {path.stem for path in multi_kind.segments_dir.iterdir()}
        assert not (old_names & remaining)

    def test_rechunking_and_kind_filter(self, multi_kind):
        from repro.store import compact_store

        rows = multi_kind.num_rows("executions")
        stats = compact_store(multi_kind, rows_per_segment=4,
                              kinds=["executions"])
        assert stats.kinds_compacted == ("executions",)
        executions = multi_kind.segments_for("executions")
        assert len(executions) == (rows + 3) // 4
        # Untouched kind keeps its original small segments.
        assert len(multi_kind.segments_for("scenarios")) > 1

    def test_noop_when_already_compact(self, multi_kind):
        from repro.store import compact_store

        compact_store(multi_kind)
        stats = compact_store(multi_kind)
        assert stats.kinds_compacted == ()
        assert stats.rows_rewritten == 0

    def test_rejects_unknown_kind_and_bad_chunk(self, multi_kind):
        from repro.store import compact_store

        with pytest.raises(KeyError):
            compact_store(multi_kind, kinds=["nonsense"])
        with pytest.raises(ValueError):
            compact_store(multi_kind, rows_per_segment=0)

    def test_report_server_identical_across_compaction(self, multi_kind):
        from repro.store import compact_store

        server = ReportServer(multi_kind)
        before = (server.latency_ecdf_by_device(), server.energy_distributions())
        compact_store(multi_kind)
        fresh = ReportServer(ResultStore(multi_kind.root))
        assert (fresh.latency_ecdf_by_device(),
                fresh.energy_distributions()) == before


class TestMmapColumns:
    def test_queries_identical_to_in_memory(self, populated, results):
        mapped = ResultStore(populated.root, mmap=True)
        plain = ResultStore(populated.root)
        for meta in plain.segments:
            for name, array in plain.columns_for(meta).items():
                mirrored = mapped.columns_for(meta)[name]
                assert isinstance(mirrored, np.memmap)
                assert not mirrored.flags.writeable
                assert np.array_equal(np.asarray(mirrored), array)
        assert mapped.query("executions").rows() \
            == plain.query("executions").rows()
        assert mapped.query("executions").objects() == results
        agg = lambda store: (store.query("executions")  # noqa: E731
                             .group_by("device_name", "backend")
                             .agg(n=("latency_ms", "count"),
                                  p99=("latency_ms", "p99"))
                             .aggregate())
        assert agg(mapped) == agg(plain)

    def test_sidecar_rebuilt_when_stale_or_missing(self, populated):
        from repro.store.segment import mmap_sidecar_dir

        mapped = ResultStore(populated.root, mmap=True)
        meta = mapped.segments[0]
        before = {name: np.asarray(a).copy()
                  for name, a in mapped.columns_for(meta).items()}
        sidecar = mmap_sidecar_dir(mapped.segments_dir, meta)
        assert sidecar.is_dir()

        # Corrupt the marker: the sidecar must be rebuilt, not trusted.
        (sidecar / "LOG_SHA256").write_text("bogus\n")
        rebuilt = ResultStore(populated.root, mmap=True).columns_for(meta)
        for name, array in before.items():
            assert np.array_equal(np.asarray(rebuilt[name]), array)
        assert (sidecar / "LOG_SHA256").read_text().strip() == meta.sha256

        # Remove the sidecar entirely: same outcome.
        import shutil
        shutil.rmtree(sidecar)
        again = ResultStore(populated.root, mmap=True).columns_for(meta)
        for name, array in before.items():
            assert np.array_equal(np.asarray(again[name]), array)

    def test_verify_checksums_log_even_with_valid_sidecar(self, populated):
        """verify=True must not be bypassed by a trusted mmap sidecar."""
        mapped = ResultStore(populated.root, mmap=True)
        meta = mapped.segments[0]
        mapped.columns_for(meta)  # materialise the sidecar

        log_path = mapped.segments_dir / meta.log_filename
        payload = bytearray(log_path.read_bytes())
        payload[:10] = b"corrupted!"
        log_path.write_bytes(bytes(payload))

        paranoid = ResultStore(populated.root, verify=True, mmap=True)
        with pytest.raises(StoreCorruptionError):
            paranoid.columns_for(meta)
        # Without verify the (checksum-tagged, still valid) sidecar serves.
        relaxed = ResultStore(populated.root, mmap=True)
        assert relaxed.columns_for(meta)

    def test_compaction_sweeps_sidecars(self, populated):
        from repro.store import compact_store
        from repro.store.segment import MMAP_DIR_SUFFIX

        mapped = ResultStore(populated.root, mmap=True)
        for meta in mapped.segments:
            mapped.columns_for(meta)  # materialise every sidecar
        sidecars = [p for p in mapped.segments_dir.iterdir()
                    if p.name.endswith(MMAP_DIR_SUFFIX)]
        assert sidecars
        compact_store(ResultStore(populated.root))
        remaining = [p for p in mapped.segments_dir.iterdir()
                     if p.name.endswith(MMAP_DIR_SUFFIX)]
        assert remaining == []


class TestQueryBin:
    def test_bin_group_matches_manual(self, populated, results):
        grouped = (populated.query("executions")
                   .bin("latency_ms", 5.0)
                   .group_by("latency_ms_bin")
                   .agg(n=("latency_ms", "count"))
                   .aggregate())
        manual = {}
        for result in results:
            manual[int(result.latency_ms // 5.0)] = \
                manual.get(int(result.latency_ms // 5.0), 0) + 1
        assert {row["latency_ms_bin"]: row["n"] for row in grouped} == manual

    def test_bin_composes_with_plain_keys(self, populated, results):
        grouped = (populated.query("executions")
                   .bin("latency_ms", 10.0, label="bucket")
                   .group_by("device_name", "bucket")
                   .agg(n=("latency_ms", "count"))
                   .aggregate())
        total = sum(row["n"] for row in grouped)
        assert total == len(results)
        assert all(isinstance(row["bucket"], int) for row in grouped)

    def test_bin_validation(self, populated):
        query = populated.query("executions")
        with pytest.raises(ValueError):
            query.bin("device_name", 5.0)  # not numeric
        with pytest.raises(ValueError):
            query.bin("latency_ms", 0.0)
        with pytest.raises(ValueError):
            query.bin("latency_ms", 5.0, label="backend")  # collides
        with pytest.raises(KeyError):
            query.group_by("undeclared_bin")


class TestFleetLoadCompaction:
    @pytest.fixture()
    def load_store(self, tmp_path):
        """fleet_load cells scattered across many tiny segments."""
        from repro.cloud import LoadCell

        store = ResultStore(tmp_path / "load.store")
        cells = [
            LoadCell(region=region, cloud_api="Speech", bin_index=b,
                     bin_start_s=b * 900.0, bin_seconds=900.0,
                     requests=10 * b + 1, payload_bytes=(10 * b + 1) * 64)
            for region in ("east", "west") for b in range(6)
        ]
        # Two writers, tiny segments: the kind ends up heavily sharded, and
        # duplicate (region, api, bin) cells across writers must *add*.
        with store.writer(rows_per_segment=2) as writer:
            writer.append_many(cells)
        with store.writer(rows_per_segment=3) as writer:
            writer.append_many(cells[:5])
        return store, cells

    def test_compact_preserves_additive_reconstruction(self, load_store):
        from repro.cloud import LoadProfile
        from repro.store import compact_store

        store, _ = load_store
        before = LoadProfile.from_store(store, ("east", "west"),
                                        6 * 900.0, 900.0)
        before_rows = store.query("fleet_load").rows()
        segments_before = len(store.segments_for("fleet_load"))
        assert segments_before > 1

        stats = compact_store(store)
        assert stats.kinds_compacted == ("fleet_load",)
        assert len(store.segments_for("fleet_load")) == 1
        assert store.verify_integrity() == len(store.segments)

        reopened = ResultStore(store.root)
        assert reopened.query("fleet_load").rows() == before_rows
        after = LoadProfile.from_store(reopened, ("east", "west"),
                                       6 * 900.0, 900.0)
        assert np.array_equal(after.requests, before.requests)
        assert np.array_equal(after.payload_bytes, before.payload_bytes)

    def test_load_cells_round_trip_as_objects(self, load_store):
        from repro.cloud import LoadCell

        store, cells = load_store
        fetched = (store.query("fleet_load")
                   .where(region="east").where("bin_index", "==", 2)
                   .objects())
        assert all(isinstance(cell, LoadCell) for cell in fetched)
        # One from each writer pass... the second writer only wrote bins 0-4
        # of "east", so bin 2 appears twice.
        assert len(fetched) == 2
        assert {cell.requests for cell in fetched} == {21}

    def test_load_report_sums_split_bins_before_peaks(self, load_store):
        """A bin split across rows counts once, at its summed height."""
        from repro.cloud import load_report

        store, _ = load_store
        report = {(r["region"], r["cloud_api"]): r for r in load_report(store)}
        east = report[("east", "Speech")]
        # Writer 2 re-added east bins 0-4, so the per-bin sums are
        # 2, 22, 42, 62, 82, 51 -> peak 82, six active bins, 261 total.
        assert east["requests"] == 261
        assert east["active_bins"] == 6
        assert east["peak_rps"] == pytest.approx(82 / 900.0)
        west = report[("west", "Speech")]
        assert west["requests"] == 156
        assert west["active_bins"] == 6
        assert west["peak_rps"] == pytest.approx(51 / 900.0)

    def test_load_report_keeps_bin_widths_separate(self, tmp_path):
        """Cells written at different bin widths are never summed into one
        fictitious time window (two campaigns in one store)."""
        from repro.cloud import LoadCell, load_report

        store = ResultStore(tmp_path / "mixed.store")
        with store.writer() as writer:
            writer.append(LoadCell("east", "Speech", 1, 900.0, 900.0, 90, 0))
            writer.append(LoadCell("east", "Speech", 1, 60.0, 60.0, 6, 0))
        (east,) = load_report(store)
        assert east["requests"] == 96
        assert east["active_bins"] == 2
        assert east["peak_rps"] == pytest.approx(max(90 / 900.0, 6 / 60.0))

    def test_time_bin_query_over_load_rows(self, load_store):
        store, _ = load_store
        grouped = (store.query("fleet_load")
                   .bin("bin_start_s", 1800.0, label="half_hour")
                   .group_by("region", "half_hour")
                   .agg(requests=("requests", "sum"))
                   .aggregate())
        east = {row["half_hour"]: row["requests"] for row in grouped
                if row["region"] == "east"}
        # Bins 0+1 -> half-hour 0, 2+3 -> 1, 4+5 -> 2 (second writer added
        # bins 0-4 of east again).
        assert east[0] == (1 + 11) * 2
        assert east[1] == (21 + 31) * 2
        assert east[2] == (41 * 2) + 51


class TestColumnarSegments:
    """Format v3: packed columnar segments, batch ingestion, mixed stores."""

    @pytest.fixture()
    def batch_columns(self, results):
        from repro.store.schema import execution_results_to_columns

        return execution_results_to_columns(results)

    @pytest.fixture()
    def columnar(self, tmp_path, batch_columns):
        """A store holding ``results`` as columnar segments."""
        store = ResultStore(tmp_path / "columnar.store")
        with store.writer(rows_per_segment=4) as writer:
            writer.append_batch("executions", batch_columns)
        return store

    def test_batch_seals_columnar_segments(self, columnar, results):
        from repro.store.segment import FORMAT_COLUMNAR

        segments = columnar.segments_for("executions")
        assert segments and all(m.format == FORMAT_COLUMNAR for m in segments)
        assert sum(m.rows for m in segments) == len(results)
        for meta in segments:
            assert (columnar.segments_dir / meta.data_filename).exists()
            assert not (columnar.segments_dir / meta.log_filename).exists()
        assert columnar.verify_integrity() == len(segments)

    def test_queries_bit_identical_to_jsonl(self, populated, columnar, results):
        assert columnar.query("executions").rows() \
            == populated.query("executions").rows()
        assert ResultStore(columnar.root).query("executions").objects() \
            == results
        agg = lambda s: (s.query("executions")  # noqa: E731
                         .group_by("device_name", "backend")
                         .agg(n=("latency_ms", "count"),
                              mean_ms=("latency_ms", "mean"),
                              p99=("latency_ms", "p99"))
                         .aggregate())
        assert agg(columnar) == agg(populated)
        arrays_a = columnar.query("executions").arrays()
        arrays_b = populated.query("executions").arrays()
        for name, array in arrays_a.items():
            assert np.array_equal(array, arrays_b[name])
            assert array.dtype == arrays_b[name].dtype

    def test_pushdown_works_on_columnar_stats(self, columnar):
        """Columnar segments carry the same pruning stats as JSONL ones."""
        assert all(m.stats for m in columnar.segments_for("executions"))
        query = columnar.query("executions").where(device_name="NOPE")
        assert query.objects() == []
        assert query.stats.segments_skipped == query.stats.segments_total

    def test_serving_identical_across_formats(self, populated, columnar):
        assert ReportServer(columnar).latency_ecdf_by_device() \
            == ReportServer(populated).latency_ecdf_by_device()
        assert ReportServer(columnar).energy_distributions() \
            == ReportServer(populated).energy_distributions()

    def test_mixed_mode_appends_preserve_order(self, tmp_path, results):
        from repro.store.schema import (execution_result_to_row,
                                        execution_results_to_columns)

        store = ResultStore(tmp_path / "mixed.store")
        with store.writer(rows_per_segment=1000) as writer:
            writer.append_batch(
                "executions", execution_results_to_columns(results[:3]))
            writer.append_row(
                "executions", execution_result_to_row(results[3]))
            writer.append_batch(
                "executions", execution_results_to_columns(results[4:]))
        assert store.query("executions").objects() == results
        formats = [m.format for m in store.segments_for("executions")]
        assert formats == ["columnar", "jsonl", "columnar"]

    def test_append_batch_validation(self, tmp_path, batch_columns):
        store = ResultStore(tmp_path / "v.store")
        with store.writer() as writer:
            incomplete = dict(batch_columns)
            del incomplete["latency_ms"]
            with pytest.raises(ValueError, match="missing columns"):
                writer.append_batch("executions", incomplete)
            extra = dict(batch_columns, bogus=batch_columns["latency_ms"])
            with pytest.raises(ValueError, match="unknown columns"):
                writer.append_batch("executions", extra)
            ragged = dict(batch_columns,
                          latency_ms=batch_columns["latency_ms"][:-1])
            with pytest.raises(ValueError, match="holds"):
                writer.append_batch("executions", ragged)
            with pytest.raises(ValueError, match="1-D"):
                writer.append_batch("executions", dict(
                    batch_columns,
                    latency_ms=batch_columns["latency_ms"].reshape(-1, 1)))
            assert writer.append_batch("executions", {
                name: array[:0] for name, array in batch_columns.items()
            }) == 0
        writer = store.writer()
        writer.close()
        with pytest.raises(RuntimeError):
            writer.append_batch("executions", batch_columns)

    def test_crash_mid_seal_columnar_is_invisible(self, columnar, results,
                                                  batch_columns):
        """Marker/manifest ordering: sealed-but-uncommitted payloads hide."""
        from repro.store.columnar import pack_columns
        from repro.store.schema import kind_for

        committed = columnar.query("executions").objects()
        # A fully sealed columnar payload with no manifest entry (crash after
        # the atomic rename, before the manifest commit)...
        orphan = columnar.segments_dir / "executions-000099.colseg"
        orphan.write_bytes(pack_columns(kind_for("executions"), batch_columns))
        # ...and a torn tmp file (crash mid-write, before the rename).
        (columnar.segments_dir / "executions-000100.colseg.tmp").write_bytes(
            b"RCS1\x00\x00")
        reopened = ResultStore(columnar.root)
        assert reopened.query("executions").objects() == committed == results

    def test_reopen_serves_committed_batch_prefix(self, tmp_path, results):
        from repro.store.schema import execution_results_to_columns

        store = ResultStore(tmp_path / "p.store")
        writer = store.writer(rows_per_segment=10 ** 6)
        writer.append_batch("executions",
                            execution_results_to_columns(results[:4]))
        writer.flush()
        writer.append_batch("executions",
                            execution_results_to_columns(results[4:]))
        del writer  # crash: buffered tail chunks never sealed
        reopened = ResultStore(tmp_path / "p.store")
        assert reopened.query("executions").objects() == results[:4]

    def test_columnar_corruption_detected(self, columnar):
        meta = columnar.segments_for("executions")[0]
        path = columnar.segments_dir / meta.data_filename
        payload = bytearray(path.read_bytes())
        payload[-3] ^= 0xFF  # flip a byte inside the last column buffer
        path.write_bytes(bytes(payload))
        with pytest.raises(StoreCorruptionError):
            ResultStore(columnar.root).verify_integrity()
        with pytest.raises(StoreCorruptionError):
            ResultStore(columnar.root, verify=True).query(
                "executions").objects()
        # Structural damage (truncation) is caught even without verify —
        # there is no row log to rebuild a columnar segment from.
        path.write_bytes(bytes(payload[: len(payload) // 2]))
        with pytest.raises(StoreCorruptionError):
            ResultStore(columnar.root).query("executions").objects()

    def test_mmap_over_columnar_identical(self, columnar, results):
        """Columnar segments map their payload in place — no .npy sidecar."""
        import mmap as mmap_module

        from repro.store.segment import mmap_sidecar_dir

        mapped = ResultStore(columnar.root, mmap=True)
        for meta in columnar.segments:
            loaded = mapped.columns_for(meta)
            for name, array in columnar.columns_for(meta).items():
                mirrored = loaded[name]
                assert not mirrored.flags.writeable
                assert np.array_equal(np.asarray(mirrored), array)
                if mirrored.dtype.kind != "U":
                    # Raw columns are zero-copy views of the mapped file
                    # (frombuffer wraps the mmap in a memoryview).
                    base = mirrored.base
                    if isinstance(base, memoryview):
                        base = base.obj
                    assert isinstance(base, mmap_module.mmap)
            # The zero-copy path never materialises a sidecar directory.
            assert not mmap_sidecar_dir(mapped.segments_dir, meta).exists()
        assert mapped.query("executions").objects() == results

    def test_v2_manifest_still_opens(self, populated, results):
        """A pre-columnar (format_version 2) manifest reads unchanged."""
        manifest_path = populated.manifest_path
        data = json.loads(manifest_path.read_text())
        data["format_version"] = 2
        for entry in data["segments"]:
            entry.pop("format", None)  # v2 entries never carried the key
        manifest_path.write_text(json.dumps(data))
        reopened = ResultStore(populated.root)
        assert reopened.query("executions").objects() == results
        # The next commit rewrites the manifest at version 3.
        with reopened.writer() as writer:
            writer.append(results[0])
        assert json.loads(manifest_path.read_text())["format_version"] == 3

    def test_unreadable_version_rejected(self, populated):
        data = json.loads(populated.manifest_path.read_text())
        data["format_version"] = 99
        populated.manifest_path.write_text(json.dumps(data))
        with pytest.raises(StoreCorruptionError, match="format version"):
            ResultStore(populated.root)

    def test_format_summary(self, tmp_path, results, batch_columns):
        from repro.store.schema import execution_result_to_row

        store = ResultStore(tmp_path / "s.store")
        with store.writer(rows_per_segment=1000) as writer:
            writer.append_batch("executions", batch_columns)
            writer.append_row("executions",
                              execution_result_to_row(results[0]))
        summary = store.format_summary()
        entry = summary["executions"]
        assert entry["segments"] == 2
        assert entry["rows"] == len(results) + 1
        assert entry["formats"] == {"columnar": 1, "jsonl": 1}
        assert entry["bytes"] > 0


class TestMixedFormatCompaction:
    @pytest.fixture()
    def mixed(self, tmp_path, results):
        """One kind split across several v2 JSONL and v3 columnar segments."""
        from repro.store.schema import execution_results_to_columns

        store = ResultStore(tmp_path / "mixed.store")
        with store.writer(rows_per_segment=3) as writer:
            for result in results[:5]:
                writer.append(result)
        with store.writer(rows_per_segment=2) as writer:
            writer.append_batch("executions",
                                execution_results_to_columns(results[5:]))
        formats = {m.format for m in store.segments_for("executions")}
        assert formats == {"jsonl", "columnar"}
        return store

    def test_compact_converges_to_columnar(self, mixed, results):
        from repro.store import compact_store

        before_rows = mixed.query("executions").rows()
        before_agg = (mixed.query("executions")
                      .group_by("device_name", "backend")
                      .agg(n=("latency_ms", "count"),
                           mean_ms=("latency_ms", "mean"))
                      .aggregate())
        stats = compact_store(mixed)
        assert stats.kinds_compacted == ("executions",)
        (meta,) = mixed.segments_for("executions")
        assert meta.format == "columnar"
        reopened = ResultStore(mixed.root)
        assert reopened.query("executions").rows() == before_rows
        assert reopened.query("executions").objects() == results
        assert (reopened.query("executions")
                .group_by("device_name", "backend")
                .agg(n=("latency_ms", "count"),
                     mean_ms=("latency_ms", "mean"))
                .aggregate()) == before_agg
        assert reopened.verify_integrity() == len(reopened.segments)

    def test_compact_forced_jsonl(self, mixed, results):
        from repro.store import compact_store

        compact_store(mixed, output_format="jsonl")
        (meta,) = mixed.segments_for("executions")
        assert meta.format == "jsonl"
        assert ResultStore(mixed.root).query("executions").objects() == results

    def test_pure_jsonl_kind_stays_jsonl(self, populated, results):
        from repro.store import compact_store

        compact_store(populated)
        (meta,) = populated.segments_for("executions")
        assert meta.format == "jsonl"
        assert populated.query("executions").objects() == results

    def test_format_conversion_without_oversharding(self, populated, results):
        """--format columnar rewrites even when segment counts are at target."""
        from repro.store import compact_store

        compact_store(populated)  # one jsonl segment
        stats = compact_store(populated, output_format="columnar")
        assert stats.kinds_compacted == ("executions",)
        (meta,) = populated.segments_for("executions")
        assert meta.format == "columnar"
        assert populated.query("executions").objects() == results

    def test_compact_rejects_unknown_format(self, mixed):
        from repro.store import compact_store

        with pytest.raises(ValueError):
            compact_store(mixed, output_format="parquet")


class TestExport:
    def test_round_trip_both_directions(self, tmp_path, results):
        from repro.store import export_store
        from repro.store.schema import execution_results_to_columns

        source = ResultStore(tmp_path / "src.store")
        with source.writer(rows_per_segment=4) as writer:
            writer.append_batch("executions",
                                execution_results_to_columns(results))
        stats = export_store(source, tmp_path / "jsonl.store")
        assert stats.output_format == "jsonl"
        assert stats.rows == len(results)
        exported = ResultStore(tmp_path / "jsonl.store")
        assert all(m.format == "jsonl" for m in exported.segments)
        assert exported.query("executions").objects() == results
        assert exported.query("executions").rows() \
            == source.query("executions").rows()
        # Segment boundaries mirror the source by default.
        assert [m.rows for m in exported.segments] \
            == [m.rows for m in source.segments]

        back = export_store(exported, tmp_path / "col.store",
                            output_format="columnar", rows_per_segment=5)
        assert back.rows == len(results)
        converted = ResultStore(tmp_path / "col.store")
        assert all(m.format == "columnar" for m in converted.segments)
        assert converted.query("executions").objects() == results
        assert converted.verify_integrity() == len(converted.segments)

    def test_export_refuses_nonempty_destination(self, tmp_path, populated):
        from repro.store import export_store

        with pytest.raises(ValueError, match="never merge"):
            export_store(populated, populated.root)

    def test_export_kind_filter_and_validation(self, tmp_path, populated):
        from repro.store import export_store

        with pytest.raises(KeyError):
            export_store(populated, tmp_path / "x.store", kinds=["nope"])
        with pytest.raises(ValueError):
            export_store(populated, tmp_path / "x.store",
                         output_format="csv")
        stats = export_store(populated, tmp_path / "k.store",
                             kinds=["executions"], rows_per_segment=100)
        assert stats.kinds == ("executions",)
        assert ResultStore(tmp_path / "k.store").num_rows("executions") \
            == populated.num_rows("executions")


class TestCacheAudit:
    """Satellite: stale/truncated derived caches must never serve bad rows."""

    def test_misshapen_npz_cache_rebuilt_not_served(self, populated, results):
        from repro.store.segment import _write_cache

        meta = populated.segments_for("executions")[0]
        cache = populated.segments_dir / meta.cache_filename
        good = ResultStore(populated.root).columns_for(meta)
        truncated = {name: np.asarray(a)[:-1] for name, a in good.items()}
        _write_cache(cache, meta.sha256, truncated)  # valid tag, wrong shape
        reopened = ResultStore(populated.root)
        loaded = reopened.columns_for(meta)
        for name, array in good.items():
            assert np.array_equal(loaded[name], np.asarray(array))
        assert reopened.query("executions").objects() == results

    def test_truncated_log_raises_not_silently_rebuilds(self, populated):
        """A cacheless segment whose log lost rows is corruption, not data."""
        meta = populated.segments_for("executions")[0]
        log = populated.segments_dir / meta.log_filename
        lines = log.read_bytes().splitlines()
        log.write_bytes(b"\n".join(lines[:-1]) + b"\n")
        (populated.segments_dir / meta.cache_filename).unlink()
        with pytest.raises(StoreCorruptionError, match="rows"):
            ResultStore(populated.root).columns_for(meta)
        with pytest.raises(StoreCorruptionError):
            ResultStore(populated.root, mmap=True).columns_for(meta)

    def test_truncated_mmap_sidecar_with_valid_marker_rebuilt(self, populated,
                                                              results):
        import io as io_module

        from repro.store.segment import atomic_write_bytes, mmap_sidecar_dir

        mapped = ResultStore(populated.root, mmap=True)
        meta = mapped.segments[0]
        good = {name: np.asarray(a).copy()
                for name, a in mapped.columns_for(meta).items()}
        sidecar = mmap_sidecar_dir(mapped.segments_dir, meta)
        marker = (sidecar / "LOG_SHA256").read_text()
        # Truncate one column's sidecar while the marker stays valid — the
        # stale-sidecar case the row-count audit exists for.
        buffer = io_module.BytesIO()
        np.save(buffer, good["latency_ms"][:-2])
        atomic_write_bytes(sidecar / "latency_ms.npy", buffer.getvalue())
        assert (sidecar / "LOG_SHA256").read_text() == marker

        reopened = ResultStore(populated.root, mmap=True)
        loaded = reopened.columns_for(meta)
        for name, array in good.items():
            assert loaded[name].shape == (meta.rows,)
            assert np.array_equal(np.asarray(loaded[name]), array)
        assert reopened.query("executions").objects() == results


class TestColumnarHardening:
    """Review follow-ups: header corruption and segment-size bounds."""

    @pytest.fixture()
    def columnar(self, tmp_path, results):
        from repro.store.schema import execution_results_to_columns

        store = ResultStore(tmp_path / "h.store")
        with store.writer(rows_per_segment=4) as writer:
            writer.append_batch("executions",
                                execution_results_to_columns(results))
        return store

    def test_corrupt_header_fields_detected_without_verify(self, columnar,
                                                           results):
        """Garbled-but-valid-JSON headers raise StoreCorruptionError, not
        raw TypeError/KeyError/ZeroDivisionError."""
        meta = columnar.segments_for("executions")[0]
        path = columnar.segments_dir / meta.data_filename
        raw = path.read_bytes()
        attacks = (
            raw.replace(b'"<f8"', b'"<x8"'),   # invalid dtype string
            raw.replace(b'"<f8"', b'"<U0"'),   # zero-itemsize dtype
            raw.replace(b'"nbytes"', b'"nbXtes"'),  # missing entry key
        )
        for attack in attacks:
            assert attack != raw, "attack did not change the payload"
            path.write_bytes(attack)
            with pytest.raises(StoreCorruptionError):
                ResultStore(columnar.root).query("executions").rows()
        path.write_bytes(raw)
        assert ResultStore(columnar.root).query("executions").objects() \
            == results

    def test_batch_segments_respect_rows_per_segment(self, tmp_path, results):
        """One oversized batch splits into rows_per_segment slices."""
        from repro.store.schema import execution_results_to_columns

        store = ResultStore(tmp_path / "sz.store")
        with store.writer(rows_per_segment=3) as writer:
            writer.append_batch("executions",
                                execution_results_to_columns(results))
            # The auto-trigger sealed only full slices; the tail is pending.
            assert writer.rows_pending == len(results) % 3
        sizes = [m.rows for m in store.segments_for("executions")]
        assert sizes[:-1] == [3] * (len(sizes) - 1)
        assert all(size <= 3 for size in sizes)
        assert sum(sizes) == len(results)
        assert store.query("executions").objects() == results

    def test_many_small_batches_coalesce_to_full_segments(self, tmp_path,
                                                          results):
        """Sub-threshold batches buffer and seal at exactly the target size."""
        from repro.store.schema import execution_results_to_columns

        store = ResultStore(tmp_path / "co.store")
        with store.writer(rows_per_segment=4) as writer:
            for result in results:  # one-row batches
                writer.append_batch(
                    "executions", execution_results_to_columns([result]))
        sizes = [m.rows for m in store.segments_for("executions")]
        assert sizes[:-1] == [4] * (len(sizes) - 1)
        assert sum(sizes) == len(results)
        assert store.query("executions").objects() == results

    def test_append_batch_does_not_alias_caller_buffers(self, tmp_path,
                                                        results):
        """Mutating an array after append_batch must not change sealed data."""
        from repro.store.schema import execution_results_to_columns

        store = ResultStore(tmp_path / "alias.store")
        # Writable arrays, as an external producer reusing buffers would pass
        # (the simulators' own column_batch outputs come pre-frozen instead).
        batch = {name: array.copy() for name, array
                 in execution_results_to_columns(results).items()}
        assert batch["latency_ms"].flags.writeable
        expected = batch["latency_ms"].copy()
        with store.writer(rows_per_segment=10 ** 6) as writer:
            writer.append_batch("executions", batch)
            batch["latency_ms"][:] = -1.0  # producer reuses its buffer
        sealed = store.query("executions").arrays("latency_ms")["latency_ms"]
        assert np.array_equal(sealed, expected)

    def test_readonly_view_of_writable_base_still_copied(self, tmp_path,
                                                         results):
        """flags.writeable alone is not trusted: a read-only view whose base
        is writable can still change under the writer, so it gets copied."""
        from repro.store.schema import execution_results_to_columns

        store = ResultStore(tmp_path / "view.store")
        batch = {name: array.copy() for name, array
                 in execution_results_to_columns(results).items()}
        base = batch["latency_ms"]  # writable base the producer keeps
        expected = base.copy()
        view = base[:]
        view.setflags(write=False)
        batch["latency_ms"] = view
        with store.writer(rows_per_segment=10 ** 6) as writer:
            writer.append_batch("executions", batch)
            base[:] = 777.0  # mutate through the base before the seal
        sealed = store.query("executions").arrays("latency_ms")["latency_ms"]
        assert np.array_equal(sealed, expected)


class TestCompressedColumns:
    """v3 compression: per-column zlib recorded in the segment header."""

    @pytest.fixture()
    def batch_columns(self, results):
        from repro.store.schema import execution_results_to_columns

        return execution_results_to_columns(results)

    @pytest.fixture()
    def compressible(self):
        """A batch whose sections deflate well (constant-heavy columns)."""
        from repro.store.schema import execution_results_to_columns  # noqa
        rows = 512
        return {
            "region": np.array(["us"] * rows),
            "cloud_api": np.array(["Speech APIs"] * rows),
            "bin_index": np.zeros(rows, dtype=np.int64),
            "bin_start_s": np.zeros(rows),
            "bin_seconds": np.full(rows, 900.0),
            "requests": np.ones(rows, dtype=np.int64),
            "payload_bytes": np.full(rows, 4096, dtype=np.int64),
        }

    def test_round_trip_identical_and_smaller(self, tmp_path, batch_columns,
                                              results):
        plain = ResultStore(tmp_path / "plain.store")
        packed = ResultStore(tmp_path / "packed.store")
        with plain.writer(rows_per_segment=100) as writer:
            writer.append_batch("executions", batch_columns)
        with packed.writer(rows_per_segment=100, compress=True) as writer:
            writer.append_batch("executions", batch_columns)
        assert packed.query("executions").objects() == results
        assert packed.query("executions").rows() \
            == plain.query("executions").rows()
        assert packed.verify_integrity() == len(packed.segments)

        def du(store):
            return sum((store.segments_dir / m.data_filename).stat().st_size
                       for m in store.segments)
        # Compression is kept per section only when it wins, so the packed
        # store can never be larger.
        assert du(packed) <= du(plain)

    def test_header_records_compression_when_it_wins(self, compressible):
        from repro.store.columnar import pack_columns, unpack_columns
        from repro.store.schema import kind_for

        kind = kind_for("fleet_load")
        coerced = {name: np.asarray(a) for name, a in compressible.items()}
        from repro.store.columnar import coerce_batch
        coerced = coerce_batch(kind, compressible)
        payload = pack_columns(kind, coerced, compress=True)
        raw_payload = pack_columns(kind, coerced)
        assert len(payload) < len(raw_payload)
        assert b'"compression"' in payload and b'"zlib"' in payload
        assert b'"raw_nbytes"' in payload
        decoded = unpack_columns(payload, kind,
                                 expected_rows=coerced["bin_index"].size)
        for name, array in coerced.items():
            assert np.array_equal(decoded[name], array), name
            assert decoded[name].dtype == array.dtype

    def test_uncompressible_sections_stay_raw(self, compressible):
        from repro.store.columnar import coerce_batch, pack_columns
        from repro.store.schema import kind_for

        kind = kind_for("fleet_load")
        rng = np.random.default_rng(0)
        noisy = dict(compressible,
                     payload_bytes=rng.integers(0, 2 ** 62, 512,
                                                dtype=np.int64))
        payload = pack_columns(kind, coerce_batch(kind, noisy), compress=True)
        header = json.loads(
            payload[8:8 + int.from_bytes(payload[4:8], "little")])
        by_name = {entry["name"]: entry for entry in header["columns"]}
        assert by_name["payload_bytes"].get("compression") is None
        assert by_name["bin_seconds"].get("compression") == "zlib"

    def test_mixed_compressed_and_raw_segments_read_together(self, tmp_path,
                                                             batch_columns,
                                                             results):
        store = ResultStore(tmp_path / "mix.store")
        half = len(results) // 2
        with store.writer(rows_per_segment=1000, compress=True) as writer:
            writer.append_batch("executions", {
                name: a[:half] for name, a in batch_columns.items()})
        with store.writer(rows_per_segment=1000) as writer:
            writer.append_batch("executions", {
                name: a[half:] for name, a in batch_columns.items()})
        assert ResultStore(store.root).query("executions").objects() == results

    def test_compressed_mmap_reads_identical(self, tmp_path, compressible):
        from repro.store.columnar import coerce_batch
        from repro.store.schema import kind_for

        kind = kind_for("fleet_load")
        coerced = coerce_batch(kind, compressible)
        store = ResultStore(tmp_path / "z.store")
        with store.writer(compress=True) as writer:
            writer.append_batch(kind, coerced)
        mapped = ResultStore(store.root, mmap=True)
        for meta in mapped.segments:
            columns = mapped.columns_for(meta)
            for name, array in coerced.items():
                assert np.array_equal(np.asarray(columns[name]), array), name

    def test_flipped_byte_in_compressed_segment_detected(self, tmp_path,
                                                         compressible):
        from repro.store.columnar import coerce_batch
        from repro.store.schema import kind_for

        kind = kind_for("fleet_load")
        store = ResultStore(tmp_path / "c.store")
        with store.writer(compress=True) as writer:
            writer.append_batch(kind, coerce_batch(kind, compressible))
        meta = store.segments[0]
        path = store.segments_dir / meta.data_filename
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF  # inside the last column's section
        path.write_bytes(bytes(raw))
        reopened = ResultStore(store.root)
        with pytest.raises(StoreCorruptionError):
            dict(reopened.columns_for(meta))
        mapped = ResultStore(store.root, mmap=True)
        with pytest.raises(StoreCorruptionError):
            dict(mapped.columns_for(meta))

    def test_raw_nbytes_mismatch_detected(self, compressible):
        from repro.store.columnar import (coerce_batch, open_columns,
                                          pack_columns)
        from repro.store.schema import kind_for

        kind = kind_for("fleet_load")
        coerced = coerce_batch(kind, compressible)
        payload = bytearray(pack_columns(kind, coerced, compress=True))
        header_len = int.from_bytes(payload[4:8], "little")
        header = payload[8:8 + header_len]
        # Same-length digit swap keeps offsets valid while lying about the
        # inflated size.
        needle = b'"raw_nbytes": '
        at = header.index(needle) + len(needle)
        digit = header[at:at + 1]
        swapped = b"9" if digit != b"9" else b"8"
        payload[8 + at:8 + at + 1] = swapped
        lazy = open_columns(bytes(payload), kind,
                            expected_rows=coerced["bin_index"].size)
        with pytest.raises(ValueError, match="inflates to"):
            dict(lazy)


class TestStoreByteAccounting:
    """`store info` separates durable bytes from derived mmap sidecars."""

    def test_sidecar_bytes_reported_for_jsonl_segments(self, populated):
        summary = populated.format_summary()
        assert summary["executions"]["sidecar_bytes"] == 0
        mapped = ResultStore(populated.root, mmap=True)
        for meta in mapped.segments:
            mapped.columns_for(meta)  # materialises the .cols sidecar
        after = ResultStore(populated.root).format_summary()
        assert after["executions"]["sidecar_bytes"] > 0
        assert after["executions"]["bytes"] \
            == summary["executions"]["bytes"]  # durable bytes unchanged

    def test_columnar_segments_never_grow_sidecars(self, tmp_path, results):
        from repro.store.schema import execution_results_to_columns

        store = ResultStore(tmp_path / "col.store")
        with store.writer(rows_per_segment=4) as writer:
            writer.append_batch("executions",
                                execution_results_to_columns(results))
        mapped = ResultStore(store.root, mmap=True)
        for meta in mapped.segments:
            mapped.columns_for(meta)
        summary = ResultStore(store.root).format_summary()
        assert summary["executions"]["sidecar_bytes"] == 0

    def test_compact_reports_bytes_reclaimed(self, populated):
        from repro.store import compact_store

        mapped = ResultStore(populated.root, mmap=True)
        for meta in mapped.segments:
            mapped.columns_for(meta)  # sidecars the compaction removes

        def du(store):
            total = 0
            for path in store.segments_dir.rglob("*"):
                if path.is_file():
                    total += path.stat().st_size
            return total

        before = du(populated)
        stats = compact_store(populated.root, rows_per_segment=10 ** 6)
        after = du(ResultStore(populated.root))
        assert stats.bytes_reclaimed == before - after

    def test_export_reports_source_and_output_bytes(self, tmp_path,
                                                    populated):
        from repro.store import export_store

        stats = export_store(populated, tmp_path / "out.store",
                             output_format="columnar")
        exported = ResultStore(tmp_path / "out.store")
        measured = sum((exported.segments_dir / f).stat().st_size
                       for m in exported.segments for f in m.filenames
                       if (exported.segments_dir / f).exists())
        assert stats.output_bytes == measured
        assert stats.source_bytes > 0
        # Columnar re-encoding of a JSONL store reclaims real bytes.
        assert stats.output_bytes < stats.source_bytes


class TestEmptyBatchPinning:
    """Satellite pin: an empty batch is a validated no-op, not a write."""

    @pytest.fixture()
    def batch_columns(self, results):
        from repro.store.schema import execution_results_to_columns

        return execution_results_to_columns(results)

    def test_empty_batch_writes_nothing(self, tmp_path, batch_columns):
        store = ResultStore(tmp_path / "e.store")
        empty = {name: a[:0] for name, a in batch_columns.items()}
        with store.writer() as writer:
            assert writer.append_batch("executions", empty) == 0
            assert writer.rows_pending == 0
        reopened = ResultStore(store.root)
        assert not reopened.segments
        assert reopened.sequence == 0
        assert not reopened.segments_dir.is_dir() \
            or list(reopened.segments_dir.iterdir()) == []

    def test_empty_batch_is_still_validated(self, tmp_path, batch_columns):
        store = ResultStore(tmp_path / "e.store")
        empty = {name: a[:0] for name, a in batch_columns.items()}
        del empty["latency_ms"]
        with store.writer() as writer:
            with pytest.raises(ValueError, match="missing columns"):
                writer.append_batch("executions", empty)
            with pytest.raises(KeyError):
                writer.append_batch("not-a-kind", {})

    def test_empty_batch_between_real_ones_preserves_rows(self, tmp_path,
                                                          batch_columns,
                                                          results):
        store = ResultStore(tmp_path / "e.store")
        empty = {name: a[:0] for name, a in batch_columns.items()}
        with store.writer(rows_per_segment=1000) as writer:
            writer.append_batch("executions", batch_columns)
            assert writer.append_batch("executions", empty) == 0
        assert store.query("executions").objects() == results
