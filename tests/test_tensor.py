"""Unit tests for tensor specs and deterministic weight tensors."""

import numpy as np
import pytest

from repro.dnn.tensor import DType, TensorSpec, WeightTensor


class TestDType:
    def test_bits(self):
        assert DType.FLOAT32.bits == 32
        assert DType.FLOAT16.bits == 16
        assert DType.INT8.bits == 8

    def test_bytes_per_element(self):
        assert DType.FLOAT32.bytes_per_element == 4
        assert DType.INT8.bytes_per_element == 1

    def test_quantized_flags(self):
        assert DType.INT8.is_quantized
        assert DType.UINT8.is_quantized
        assert not DType.FLOAT32.is_quantized
        assert not DType.FLOAT16.is_quantized


class TestTensorSpec:
    def test_num_elements_and_size(self):
        spec = TensorSpec((1, 224, 224, 3))
        assert spec.num_elements == 224 * 224 * 3
        assert spec.size_bytes == spec.num_elements * 4
        assert spec.rank == 4

    def test_rejects_empty_shape(self):
        with pytest.raises(ValueError):
            TensorSpec(())

    def test_rejects_non_positive_dims(self):
        with pytest.raises(ValueError):
            TensorSpec((1, 0, 3))

    def test_with_batch(self):
        spec = TensorSpec((1, 32, 32, 3))
        batched = spec.with_batch(8)
        assert batched.shape == (8, 32, 32, 3)
        assert spec.shape[0] == 1

    def test_with_batch_rejects_non_positive(self):
        with pytest.raises(ValueError):
            TensorSpec((1, 3)).with_batch(0)

    def test_dtype_coercion_from_string(self):
        spec = TensorSpec((4,), "int8")
        assert spec.dtype is DType.INT8


class TestWeightTensor:
    def test_determinism(self):
        a = WeightTensor((64, 64), seed=3)
        b = WeightTensor((64, 64), seed=3)
        assert a.checksum() == b.checksum()
        assert np.array_equal(a.materialize(), b.materialize())

    def test_different_seeds_differ(self):
        a = WeightTensor((64, 64), seed=3)
        b = WeightTensor((64, 64), seed=4)
        assert a.checksum() != b.checksum()

    def test_different_shapes_differ(self):
        a = WeightTensor((64, 64), seed=3)
        b = WeightTensor((64, 65), seed=3)
        assert a.checksum() != b.checksum()

    def test_materialize_bounded(self):
        tensor = WeightTensor((1024, 1024), seed=0)
        sample = tensor.materialize()
        assert sample.size <= 1024
        assert tensor.num_parameters == 1024 * 1024

    def test_materialize_respects_max_values(self):
        tensor = WeightTensor((100,), seed=0)
        assert tensor.materialize(max_values=10).size == 10

    def test_sparsity_measured(self):
        dense = WeightTensor((512,), seed=1, sparsity=0.0)
        sparse = WeightTensor((512,), seed=1, sparsity=0.5)
        assert dense.measured_sparsity() < 0.05
        assert sparse.measured_sparsity() == pytest.approx(0.5, abs=0.05)

    def test_sparsity_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            WeightTensor((4,), sparsity=1.0)
        with pytest.raises(ValueError):
            WeightTensor((4,), sparsity=-0.1)

    def test_quantized_materialization(self):
        tensor = WeightTensor((256,), seed=2, dtype=DType.INT8)
        sample = tensor.materialize()
        assert sample.dtype == np.int8
        assert sample.min() >= -128 and sample.max() <= 127

    def test_float16_materialization(self):
        tensor = WeightTensor((64,), seed=2, dtype=DType.FLOAT16)
        assert tensor.materialize().dtype == np.float16

    def test_size_bytes_reflects_dtype(self):
        fp32 = WeightTensor((100,), dtype=DType.FLOAT32)
        int8 = fp32.with_dtype(DType.INT8)
        assert fp32.size_bytes == 400
        assert int8.size_bytes == 100

    def test_with_seed_and_sparsity_copies(self):
        tensor = WeightTensor((8, 8), seed=1, name="conv/kernel")
        reseeded = tensor.with_seed(5)
        assert reseeded.seed == 5
        assert reseeded.shape == tensor.shape
        assert reseeded.name == tensor.name
        sparser = tensor.with_sparsity(0.3)
        assert sparser.sparsity == pytest.approx(0.3)

    def test_to_bytes_embeds_shape(self):
        a = WeightTensor((2, 3), seed=0).to_bytes()
        b = WeightTensor((3, 2), seed=0).to_bytes()
        assert a != b

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            WeightTensor(())
        with pytest.raises(ValueError):
            WeightTensor((0, 3))
