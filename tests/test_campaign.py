"""Tests for out-of-core sharded campaigns: shard geometry, bit-identity
for any shard count, merge-by-adoption semantics and crash-mid-merge
convergence."""

import os

import numpy as np
import pytest

from repro.campaign import (ambient_spec, campaign_spec, run_campaign,
                            shard_ranges)
from repro.cloud.load import LoadProfile, load_report
from repro.fleet.simulator import FleetSimulator
from repro.store import ResultStore, merge_stores
from repro.store.merge import adopt_segments

NUM_USERS = 36
HORIZON_S = 6 * 3600.0
BIN_S = 900.0


@pytest.fixture(scope="module")
def spec():
    return ambient_spec(NUM_USERS, seed=7, horizon_s=HORIZON_S)


@pytest.fixture(scope="module")
def baseline(spec, tmp_path_factory):
    """The unsharded (shards=1, in-process) campaign every variant must
    reproduce bit-for-bit."""
    root = tmp_path_factory.mktemp("campaign-baseline")
    return run_campaign(spec, root, shards=1, bin_seconds=BIN_S,
                        use_processes=False)


def _events(store):
    return store.query("fleet_events").arrays()


def _load(store):
    return store.query("fleet_load").arrays()


class TestShardRanges:
    def test_partition_is_contiguous_and_balanced(self):
        for num_users in (0, 1, 7, 36, 1000):
            for shards in (1, 2, 3, 5, 8, 41):
                ranges = shard_ranges(num_users, shards)
                assert len(ranges) == shards
                assert ranges[0][0] == 0
                assert ranges[-1][1] == num_users
                sizes = []
                for (lo, hi), (next_lo, _) in zip(ranges, ranges[1:]):
                    assert hi == next_lo  # contiguous, in user order
                for lo, hi in ranges:
                    assert 0 <= lo <= hi
                    sizes.append(hi - lo)
                assert max(sizes) - min(sizes) <= 1  # balanced
                assert sum(sizes) == num_users

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="shards"):
            shard_ranges(10, 0)
        with pytest.raises(ValueError, match="shards"):
            shard_ranges(10, -1)
        with pytest.raises(ValueError, match="num_users"):
            shard_ranges(-1, 2)

    def test_more_shards_than_users_yields_empty_ranges(self):
        ranges = shard_ranges(3, 5)
        assert [hi - lo for lo, hi in ranges] == [1, 1, 1, 0, 0]


class TestBitIdentity:
    """The tentpole invariant: output is identical for any shard count."""

    @pytest.mark.parametrize("shards", [2, 3, 5])
    def test_sharded_matches_unsharded(self, spec, baseline, tmp_path,
                                       shards):
        result = run_campaign(spec, tmp_path / f"c{shards}", shards=shards,
                              bin_seconds=BIN_S, use_processes=False)
        assert result.users == baseline.users
        assert result.events == baseline.events
        assert result.offloaded == baseline.offloaded
        ref_events, got_events = _events(baseline.store), _events(result.store)
        assert set(got_events) == set(ref_events)
        for name, ref in ref_events.items():
            assert np.array_equal(got_events[name], ref), name
            assert got_events[name].dtype == ref.dtype
        ref_load, got_load = _load(baseline.store), _load(result.store)
        for name, ref in ref_load.items():
            assert np.array_equal(got_load[name], ref), name
        assert load_report(result.store) == load_report(baseline.store)

    def test_process_pool_matches_inline(self, spec, baseline, tmp_path):
        result = run_campaign(spec, tmp_path / "procs", shards=4,
                              bin_seconds=BIN_S, max_parallel=2)
        for name, ref in _events(baseline.store).items():
            assert np.array_equal(_events(result.store)[name], ref), name

    def test_matches_direct_simulator_ingestion(self, spec, baseline,
                                                tmp_path):
        """The campaign path reproduces plain ``run_to_store`` exactly."""
        direct = ResultStore(tmp_path / "direct.store")
        FleetSimulator(spec, max_workers=1).run_to_store(direct)
        for name, ref in _events(direct).items():
            assert np.array_equal(_events(baseline.store)[name], ref), name

    def test_compressed_campaign_is_identical(self, spec, baseline, tmp_path):
        result = run_campaign(spec, tmp_path / "z", shards=3,
                              bin_seconds=BIN_S, compress=True,
                              use_processes=False)
        for name, ref in _events(baseline.store).items():
            assert np.array_equal(_events(result.store)[name], ref), name
        for name, ref in _load(baseline.store).items():
            assert np.array_equal(_load(result.store)[name], ref), name

    def test_load_grid_matches_rebuilt_profiles(self, spec, baseline):
        """The merged grid equals the vectorised per-shard rebuild's sum."""
        rebuilt = LoadProfile.from_store(baseline.store, spec.regions,
                                         spec.horizon_s, BIN_S)
        assert rebuilt.total_requests == baseline.offloaded


class TestCampaignRun:
    def test_result_accounting(self, spec, baseline):
        assert baseline.users == NUM_USERS
        assert [r.shard_index for r in baseline.shard_results] == [0]
        assert sum(r.events for r in baseline.shard_results) \
            == baseline.events
        assert baseline.merge.segments_adopted \
            == sum(1 for _ in baseline.store.segments_for("fleet_events"))
        assert baseline.store.verify_integrity() > 0

    def test_refuses_finished_campaign_directory(self, spec, baseline):
        with pytest.raises(ValueError, match="already holds committed"):
            run_campaign(spec, baseline.store_root.rsplit("/merged.store")[0],
                         shards=1, bin_seconds=BIN_S, use_processes=False)

    def test_empty_shards_are_harmless(self, tmp_path):
        spec = ambient_spec(3, seed=1, horizon_s=3600.0)
        result = run_campaign(spec, tmp_path / "tiny", shards=5,
                              bin_seconds=BIN_S, use_processes=False)
        assert [r.users for r in result.shard_results] == [1, 1, 1, 0, 0]
        assert result.store.query("fleet_events").stats is not None

    def test_campaign_spec_builders(self):
        assert campaign_spec("ambient", 10).num_users == 10
        assert campaign_spec("zoo", 4, seed=2).seed == 2
        with pytest.raises(KeyError, match="unknown campaign workload"):
            campaign_spec("bogus", 10)


class TestMergeSemantics:
    @pytest.fixture()
    def shard_stores(self, spec, baseline, tmp_path):
        """Two freshly simulated shard stores covering the population."""
        stores = []
        for index, (lo, hi) in enumerate(shard_ranges(spec.num_users, 2)):
            store = ResultStore(tmp_path / f"s{index}.store")
            FleetSimulator(spec, max_workers=1).run_to_store(
                store, user_range=(lo, hi))
            stores.append(store)
        return stores

    def test_adoption_hard_links_not_copies(self, shard_stores, tmp_path):
        dest = ResultStore(tmp_path / "m.store")
        stats = merge_stores(dest, shard_stores)
        assert stats.files_linked > 0 and stats.files_copied == 0
        source_inodes = {
            os.stat(store.segments_dir / meta.data_filename).st_ino
            for store in shard_stores
            for meta in store.segments_for("fleet_events")
        }
        for meta in dest.segments_for("fleet_events"):
            assert os.stat(
                dest.segments_dir / meta.data_filename).st_ino in source_inodes

    def test_merge_preserves_rows_and_order(self, shard_stores, tmp_path):
        dest = ResultStore(tmp_path / "m.store")
        stats = merge_stores(dest, shard_stores)
        assert stats.rows_adopted == sum(
            meta.rows for store in shard_stores
            for meta in store.segments_for("fleet_events"))
        merged = _events(dest)
        offset = 0
        for store in shard_stores:  # shard order == user order
            part = _events(store)
            rows = part["user_id"].size
            for name, ref in part.items():
                assert np.array_equal(
                    merged[name][offset:offset + rows], ref), name
            offset += rows
        assert dest.verify_integrity() == stats.segments_adopted

    def test_rejects_merging_store_into_itself(self, shard_stores):
        with pytest.raises(ValueError, match="into itself"):
            merge_stores(shard_stores[0], [shard_stores[0]])

    def test_kind_filter(self, shard_stores, tmp_path):
        dest = ResultStore(tmp_path / "m.store")
        stats = merge_stores(dest, shard_stores, kinds=("fleet_load",))
        assert stats.segments_adopted == 0  # run_to_store wrote events only
        assert not dest.segments

    def test_sources_may_be_paths(self, shard_stores, tmp_path):
        dest = ResultStore(tmp_path / "m.store")
        stats = merge_stores(dest, [str(s.root) for s in shard_stores])
        assert stats.sources == 2 and stats.segments_adopted > 0


class TestCrashMidMerge:
    """Kill between segment adoption and manifest commit; reads stay on the
    committed prefix and a retry converges to the same final state."""

    def _shards(self, spec, tmp_path):
        stores = []
        for index, (lo, hi) in enumerate(shard_ranges(spec.num_users, 2)):
            store = ResultStore(tmp_path / f"s{index}.store")
            FleetSimulator(spec, max_workers=1).run_to_store(
                store, user_range=(lo, hi))
            stores.append(store)
        return stores

    def test_crash_before_commit_then_retry_converges(self, spec, tmp_path,
                                                      monkeypatch):
        shard_stores = self._shards(spec, tmp_path)
        dest = ResultStore(tmp_path / "m.store")
        # Seed the destination with a committed prefix the crash must not
        # disturb.
        prefix_store = ResultStore(tmp_path / "prefix.store")
        FleetSimulator(ambient_spec(2, seed=9, horizon_s=3600.0),
                       max_workers=1).run_to_store(prefix_store)
        merge_stores(dest, [prefix_store])
        prefix = _events(dest)
        prefix_names = [m.name for m in dest.segments]

        real_commit = ResultStore._commit

        def crash(store, metas, sequence):
            raise RuntimeError("injected crash before manifest commit")

        monkeypatch.setattr(ResultStore, "_commit", crash)
        with pytest.raises(RuntimeError, match="injected crash"):
            merge_stores(dest, shard_stores)
        monkeypatch.setattr(ResultStore, "_commit", real_commit)

        # Reopen cold: adopted-but-uncommitted files are invisible; reads
        # serve exactly the previously committed prefix.
        reopened = ResultStore(dest.root)
        assert [m.name for m in reopened.segments] == prefix_names
        after = _events(reopened)
        for name, ref in prefix.items():
            assert np.array_equal(after[name], ref), name

        # Retry: the unchanged sequence counter re-derives the same target
        # names, so os.replace converges the orphans instead of duplicating.
        orphans = {p.name for p in reopened.segments_dir.iterdir()}
        stats = merge_stores(reopened, shard_stores)
        assert stats.rows_adopted == sum(
            meta.rows for store in shard_stores
            for meta in store.segments_for("fleet_events"))
        final = ResultStore(dest.root)
        adopted_names = {m.data_filename for m in final.segments}
        assert adopted_names <= {p.name for p in final.segments_dir.iterdir()}
        assert orphans <= {p.name for p in final.segments_dir.iterdir()} | \
            adopted_names
        assert final.verify_integrity() == len(final.segments)
        total = _events(final)
        assert total["user_id"].size == prefix["user_id"].size + \
            stats.rows_adopted

    def test_no_tmp_files_survive_a_clean_merge(self, spec, tmp_path):
        shard_stores = self._shards(spec, tmp_path)
        dest = ResultStore(tmp_path / "m.store")
        merge_stores(dest, shard_stores)
        leftovers = [p for p in dest.segments_dir.iterdir()
                     if ".adopt-tmp" in p.name]
        assert leftovers == []
