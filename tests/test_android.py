"""Unit tests for the Android substrate: dex, manifest, APK packaging, cloud APIs."""

import pytest

from repro.android.apk import APK_SIZE_LIMIT, ApkBuilder, AppPackage
from repro.android.cloud_apis import CLOUD_APIS, api_by_name, apis_for_provider
from repro.android.dex import DexFile, SmaliClass, SmaliMethod
from repro.android.manifest import AndroidManifest
from repro.android.nativelibs import (
    accelerator_for_library,
    framework_for_library,
    libraries_for_framework,
)


class TestDex:
    def test_round_trip(self):
        dex = DexFile()
        dex.add_invocations("com.example.Main", ["Lorg/tensorflow/lite/Interpreter;->run()V"])
        restored = DexFile.from_bytes(dex.to_bytes())
        assert restored.invoked_targets() == dex.invoked_targets()

    def test_magic_bytes(self):
        data = DexFile().to_bytes()
        assert data.startswith(b"dex\n035\x00")
        with pytest.raises(ValueError):
            DexFile.from_bytes(b"not a dex")

    def test_smali_decompilation_contains_invocations(self):
        dex = DexFile()
        dex.add_invocations("com.example.ml.Service",
                            ["Lcom/google/mlkit/vision/face/FaceDetector;->process()V"])
        smali = dex.decompile_to_smali()
        assert "smali/com/example/ml/Service.smali" in smali
        text = "\n".join(smali.values())
        assert "invoke-virtual" in text
        assert "FaceDetector" in text

    def test_smali_class_rendering(self):
        cls = SmaliClass("a.B", (SmaliMethod("run", ("Lx/Y;->z()V",)),))
        text = cls.to_smali()
        assert ".class public La/B;" in text
        assert ".method public run()V" in text


class TestManifest:
    def test_xml_round_trip(self):
        manifest = AndroidManifest(package="com.example.app", version_code=7,
                                   permissions=("android.permission.CAMERA",))
        restored = AndroidManifest.from_xml(manifest.to_xml())
        assert restored == manifest

    def test_parse_requires_package(self):
        with pytest.raises(ValueError):
            AndroidManifest.from_xml("<manifest></manifest>")


class TestApkPackaging:
    def _builder(self, package="com.example.app"):
        return ApkBuilder(AndroidManifest(package=package))

    def test_basic_package_contents(self):
        builder = self._builder()
        builder.add_asset("models/detector.tflite", b"\x00" * 128)
        builder.add_native_library("libtensorflowlite_jni.so")
        package = builder.build()
        entries = package.apk_entries()
        assert "AndroidManifest.xml" in entries
        assert "classes.dex" in entries
        assert "assets/models/detector.tflite" in entries
        assert any(name.startswith("lib/arm64-v8a/") for name in entries)

    def test_all_files_prefixes_sources(self):
        builder = self._builder()
        builder.add_asset("models/a.tflite", b"a")
        builder.add_asset_pack("ml_models", {"big_model.tflite": b"b" * 64})
        package = builder.build()
        files = package.all_files()
        assert any(path.startswith("apk/") for path in files)
        assert any(path.startswith("pack/ml_models/") for path in files)

    def test_oversized_assets_spill_to_obb(self):
        builder = self._builder()
        builder.add_asset("models/huge.tflite", b"\x01" * (APK_SIZE_LIMIT + 1024))
        builder.add_asset("models/small.tflite", b"\x02" * 64)
        package = builder.build()
        assert package.apk_size <= APK_SIZE_LIMIT
        assert len(package.expansions) == 1
        obb_entries = package.expansions[0].entries()
        assert "models/huge.tflite" in obb_entries
        assert "assets/models/small.tflite" in package.apk_entries()

    def test_app_package_is_a_zip(self):
        package = self._builder().build()
        assert package.apk[:2] == b"PK"


class TestCloudApisAndNativeLibs:
    def test_fig15_categories_are_covered(self):
        names = {api.name for api in CLOUD_APIS}
        assert "Vision/Face" in names
        assert "Rekognition (face recognition)" in names
        assert len(names) == 14

    def test_providers(self):
        assert all(api.provider == "Google" for api in apis_for_provider("Google"))
        assert all(api.provider == "AWS" for api in apis_for_provider("AWS"))
        assert len(apis_for_provider("Google")) + len(apis_for_provider("AWS")) == len(CLOUD_APIS)

    def test_api_lookup(self):
        assert api_by_name("Vision/Barcode").provider == "Google"
        with pytest.raises(KeyError):
            api_by_name("Vision/NotAThing")

    def test_native_library_lookups(self):
        assert "libtensorflowlite_jni.so" in libraries_for_framework("tflite")
        assert framework_for_library("libncnn.so") == "ncnn"
        assert framework_for_library("libunknown.so") is None
        assert accelerator_for_library("libnnapi_delegate.so") == "nnapi"
        assert accelerator_for_library("libSNPE.so") == "snpe"
